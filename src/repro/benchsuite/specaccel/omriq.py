"""SPEC ACCEL 363.omriq / 463.pomriq — MRI Q-matrix reconstruction (Ref).

A structure-of-arrays gather of the k-space trajectory plus ``sin``/``cos``
calls per sample; compute bound, with the paper observing mild slowdowns
when bulk load / saturation reduce ILP or occupancy (0.92×–1.03×).
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["OMRIQ", "OMRIQ_SOURCE"]


OMRIQ_SOURCE = """
#pragma acc kernels loop independent
for (x = 0; x < numX; x++) {
  double qr = 0.0;
  double qi = 0.0;
#pragma acc loop seq
  for (k = 0; k < numK; k++) {
    expArg = 6.2831853071795864 * (kVals[k].Kx * xv[x]
           + kVals[k].Ky * yv[x]
           + kVals[k].Kz * zv[x]);
    cosArg = cos(expArg);
    sinArg = sin(expArg);
    phi = kVals[k].PhiMag;
    qr += phi * cosArg;
    qi += phi * sinArg;
  }
  Qr[x] = qr;
  Qi[x] = qi;
}
"""

_SAMPLES = 32768.0 * 3072.0 / 64.0  # numX x numK work split across launches
_LAUNCHES = 64

OMRIQ = BenchmarkSpec(
    name="omriq",
    suite="spec",
    programming_model="acc",
    compute="MRI",
    access="Structure-of-arrays",
    num_kernels=2,
    problem_class="Ref",
    kernels=(
        KernelSpec("omriq_q", OMRIQ_SOURCE, _SAMPLES, _LAUNCHES, repeat=2),
    ),
    paper_original_time={"nvhpc": 16.02, "gcc": 16.18},
)
