"""SPEC ACCEL 353.olbm / 453.polbm — lattice Boltzmann (D3Q19, Ref).

The collide-stream kernel reads all 19 distribution values of a cell and
many of them several times (density, velocity and equilibrium terms); the
paper reports that plain CSE removes ~50–55 % of the loads and yields the
1.32×–1.38× speedups seen across compilers.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["OLBM", "OLBM_COLLIDE_SOURCE"]


#: Collide + stream for a subset of the 19 directions (the full kernel
#: repeats the same pattern for all directions).
OLBM_COLLIDE_SOURCE = """
#pragma acc kernels loop independent
for (i = 0; i < n_cells; i++) {
  rho = f[0][i] + f[1][i] + f[2][i] + f[3][i] + f[4][i]
      + f[5][i] + f[6][i] + f[7][i] + f[8][i] + f[9][i]
      + f[10][i] + f[11][i] + f[12][i] + f[13][i] + f[14][i]
      + f[15][i] + f[16][i] + f[17][i] + f[18][i];
  ux = (f[1][i] - f[2][i] + f[7][i] - f[8][i] + f[9][i]
      - f[10][i] + f[11][i] - f[12][i] + f[13][i] - f[14][i]) / rho;
  uy = (f[3][i] - f[4][i] + f[7][i] + f[8][i] - f[9][i]
      - f[10][i] + f[15][i] - f[16][i] + f[17][i] - f[18][i]) / rho;
  uz = (f[5][i] - f[6][i] + f[11][i] + f[12][i] - f[13][i]
      - f[14][i] + f[15][i] + f[16][i] - f[17][i] - f[18][i]) / rho;
  u2 = 1.5 * (ux * ux + uy * uy + uz * uz);
  fnew[0][i] = f[0][i] * (1.0 - omega) + omega * (1.0 / 3.0) * rho * (1.0 - u2);
  fnew[1][i] = f[1][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 + 3.0 * ux + 4.5 * ux * ux - u2);
  fnew[2][i] = f[2][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 - 3.0 * ux + 4.5 * ux * ux - u2);
  fnew[3][i] = f[3][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 + 3.0 * uy + 4.5 * uy * uy - u2);
  fnew[4][i] = f[4][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 - 3.0 * uy + 4.5 * uy * uy - u2);
  fnew[5][i] = f[5][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 + 3.0 * uz + 4.5 * uz * uz - u2);
  fnew[6][i] = f[6][i] * (1.0 - omega)
    + omega * (1.0 / 18.0) * rho * (1.0 - 3.0 * uz + 4.5 * uz * uz - u2);
  fnew[7][i] = f[7][i] * (1.0 - omega)
    + omega * (1.0 / 36.0) * rho * (1.0 + 3.0 * (ux + uy)
    + 4.5 * (ux + uy) * (ux + uy) - u2);
  fnew[8][i] = f[8][i] * (1.0 - omega)
    + omega * (1.0 / 36.0) * rho * (1.0 + 3.0 * (uy - ux)
    + 4.5 * (uy - ux) * (uy - ux) - u2);
}
"""

_CELLS = 100.0 * 100.0 * 130.0  # Ref lattice
_ITERS = 3000

OLBM = BenchmarkSpec(
    name="olbm",
    suite="spec",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=3,
    problem_class="Ref",
    kernels=(
        KernelSpec("olbm_collide", OLBM_COLLIDE_SOURCE, _CELLS, _ITERS // 10, repeat=2, statement_scale=2.0),
    ),
    paper_original_time={"nvhpc": 7.11, "gcc": 13.32},
)
