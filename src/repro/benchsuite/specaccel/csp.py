"""SPEC ACCEL 357.csp / 457.pcsp — scalar penta-diagonal solver (CLASS C / S).

Same computation as NPB SP but implemented with the ``kernels`` directive,
which GCC supports poorly (111.79 s original, Table III); bulk load is
worth ~2× there (Figure 4).
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.benchsuite.npb.sp import SP_LHSX_SOURCE, SP_NINVR_SOURCE, SP_XSOLVE_SOURCE

__all__ = ["CSP"]


def _kernels_directive(source: str) -> str:
    return source.replace("#pragma acc parallel loop gang",
                          "#pragma acc kernels loop independent")


_GRID = 162.0 ** 3
_PLANE = 162.0 ** 2
_STEPS = 400

CSP = BenchmarkSpec(
    name="csp",
    suite="spec",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=68,
    problem_class="Ref / Test (CLASS C / S)",
    kernels=(
        KernelSpec("csp_lhsx", _kernels_directive(SP_LHSX_SOURCE), _GRID, _STEPS, repeat=6, statement_scale=3.0),
        KernelSpec("csp_xsolve", _kernels_directive(SP_XSOLVE_SOURCE), _PLANE, _STEPS * 3, repeat=9, statement_scale=2.0),
        KernelSpec("csp_ninvr", _kernels_directive(SP_NINVR_SOURCE), _GRID, _STEPS, repeat=6),
    ),
    paper_original_time={"nvhpc": 7.71, "gcc": 27.26},
)
