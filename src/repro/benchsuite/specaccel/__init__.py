"""SPEC ACCEL benchmark suite (OpenACC and OpenMP, C) — paper Table III.

The OpenACC versions use the ``kernels`` directive (whose immature support
in GCC is the source of the paper's largest speedups); the OpenMP versions
(``p``-prefixed names) use ``target teams distribute`` and are derived from
the same kernels via :func:`repro.benchsuite.base.acc_to_omp_source`.
"""

from repro.benchsuite.specaccel.ostencil import OSTENCIL
from repro.benchsuite.specaccel.olbm import OLBM
from repro.benchsuite.specaccel.omriq import OMRIQ
from repro.benchsuite.specaccel.ep import SPEC_EP
from repro.benchsuite.specaccel.cg import SPEC_CG
from repro.benchsuite.specaccel.csp import CSP
from repro.benchsuite.specaccel.bt import SPEC_BT

__all__ = ["OSTENCIL", "OLBM", "OMRIQ", "SPEC_EP", "SPEC_CG", "CSP", "SPEC_BT"]
