"""SPEC ACCEL 370.bt / 470.pbt — block tri-diagonal solver (CLASS B / W).

Same computation as NPB BT under the ``kernels`` directive.  The OpenMP
version (pbt) executes one of its solve kernels with a single thread block
over nested loops, which is where the paper's largest speedup (4.84× with
bulk load on Clang) comes from.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.benchsuite.npb.bt import (
    BT_ADD_SOURCE,
    BT_JACOBIAN_SOURCE,
    BT_RHS_SOURCE,
    BT_SOLVE_SOURCE,
)

__all__ = ["SPEC_BT"]


def _kernels_directive(source: str) -> str:
    return (
        source
        .replace("#pragma acc parallel loop gang num_gangs(ksize-1) num_workers(4) vector_length(32)",
                 "#pragma acc kernels loop independent")
        .replace("#pragma acc parallel loop gang num_workers(4) vector_length(32)",
                 "#pragma acc kernels loop independent")
        .replace("#pragma acc parallel loop gang",
                 "#pragma acc kernels loop independent")
    )


_GRID = 102.0 ** 3   # CLASS B
_STEPS = 200

SPEC_BT = BenchmarkSpec(
    name="bt",
    suite="spec",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=50,
    problem_class="Ref / Test (CLASS B / W)",
    kernels=(
        KernelSpec("bt_jacobian_z", _kernels_directive(BT_JACOBIAN_SOURCE), _GRID, _STEPS, repeat=3, statement_scale=5.0),
        KernelSpec("bt_solve_z", _kernels_directive(BT_SOLVE_SOURCE), _GRID / 102.0 * 5,
                   _STEPS, repeat=9, parallel_fraction=0.25, statement_scale=3.0),
        KernelSpec("bt_rhs_x", _kernels_directive(BT_RHS_SOURCE), _GRID, _STEPS, repeat=6, statement_scale=2.0),
        KernelSpec("bt_add", _kernels_directive(BT_ADD_SOURCE), _GRID, _STEPS, repeat=4),
    ),
    paper_original_time={"nvhpc": 3.24, "gcc": 130.43},
)
