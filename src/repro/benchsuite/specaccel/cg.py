"""SPEC ACCEL 354.cg / 454.pcg — conjugate gradient (> CLASS C, Ref).

Same irregular sparse matrix–vector product as NPB CG under the ``kernels``
directive.  GCC's OpenACC handles the irregular inner loop very poorly
(662 s original time in Table III), but ACC Saturator finds little to
improve (1.00×–1.17×).
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.benchsuite.npb.cg import CG_AXPY_SOURCE, CG_NORM_SOURCE, CG_SPMV_SOURCE

__all__ = ["SPEC_CG"]


def _kernels_directive(source: str) -> str:
    return (
        source
        .replace("#pragma acc parallel loop gang vector_length(128)",
                 "#pragma acc kernels loop independent")
        .replace("#pragma acc parallel loop gang",
                 "#pragma acc kernels loop independent")
    )


_ROWS = 220000.0
_NNZ_PER_ROW = 250.0
_ITERS = 75

SPEC_CG = BenchmarkSpec(
    name="cg",
    suite="spec",
    programming_model="acc",
    compute="Eigenvalue",
    access="Irregular",
    num_kernels=16,
    problem_class="Ref (> CLASS C)",
    kernels=(
        KernelSpec("cg_spmv", _kernels_directive(CG_SPMV_SOURCE), _ROWS * _NNZ_PER_ROW, _ITERS, repeat=2),
        KernelSpec("cg_axpy", _kernels_directive(CG_AXPY_SOURCE), _ROWS, _ITERS * 2, repeat=8),
        KernelSpec("cg_norm", _kernels_directive(CG_NORM_SOURCE), _ROWS, _ITERS, repeat=6),
    ),
    paper_original_time={"nvhpc": 4.28, "gcc": 662.58},
)
