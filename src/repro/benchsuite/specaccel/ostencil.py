"""SPEC ACCEL 352.ostencil / 452.postencil — 3-D Jacobi heat stencil (Ref).

A single 7-point stencil kernel; already close to the bandwidth roofline,
so the paper measures 0.93×–1.01×, with a small *slowdown* from equality
saturation on OpenACC caused by reduced SM occupancy.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["OSTENCIL", "OSTENCIL_SOURCE"]


OSTENCIL_SOURCE = """
#pragma acc kernels loop independent
for (k = 1; k < nz - 1; k++) {
#pragma acc loop independent
  for (j = 1; j < ny - 1; j++) {
#pragma acc loop independent vector(128)
    for (i = 1; i < nx - 1; i++) {
      a1[k][j][i] = c1 * (a0[k][j][i-1] + a0[k][j][i+1]
                        + a0[k][j-1][i] + a0[k][j+1][i]
                        + a0[k-1][j][i] + a0[k+1][j][i])
                  - c0 * a0[k][j][i];
    }}}
"""

_GRID = 512.0 * 512.0 * 98.0  # Ref size
_ITERS = 20000

OSTENCIL = BenchmarkSpec(
    name="ostencil",
    suite="spec",
    programming_model="acc",
    compute="Jacobi",
    access="Halo (3D)",
    num_kernels=1,
    problem_class="Ref",
    kernels=(
        KernelSpec("ostencil_jacobi", OSTENCIL_SOURCE, _GRID, _ITERS // 40, repeat=1),
    ),
    paper_original_time={"nvhpc": 3.87, "gcc": 10.28},
)
