"""NPB and SPEC ACCEL benchmark kernels (paper Tables II and III).

Every benchmark is represented by real OpenACC/OpenMP C kernel sources that
run through the full ACC Saturator pipeline; suite-level numbers aggregate
the per-kernel GPU-model results using the paper's kernel counts and the
benchmarks' problem sizes (NPB CLASS C, SPEC Ref).
"""

from repro.benchsuite.base import BenchmarkSpec, KernelSpec, acc_to_omp_source
from repro.benchsuite.registry import (
    NPB_BENCHMARKS,
    SPEC_ACC_BENCHMARKS,
    SPEC_OMP_BENCHMARKS,
    all_benchmarks,
    get_benchmark,
)

__all__ = [
    "BenchmarkSpec",
    "KernelSpec",
    "NPB_BENCHMARKS",
    "SPEC_ACC_BENCHMARKS",
    "SPEC_OMP_BENCHMARKS",
    "acc_to_omp_source",
    "all_benchmarks",
    "get_benchmark",
]
