"""NPB SP — scalar penta-diagonal CFD solver (CLASS C).

The lhs assembly kernels reload the same ``rho_i``/``us`` planes with ±1/±2
offsets and recompute the same dtt?/c2dtt? factors; memory-latency bound
like BT.  The paper measures 1.17×–1.21× (NVHPC) and 1.22×–1.27× (GCC).
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["SP", "SP_LHSX_SOURCE", "SP_XSOLVE_SOURCE", "SP_NINVR_SOURCE"]


#: lhsx: assemble the scalar penta-diagonal coefficients along x.
SP_LHSX_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k <= nz2; k++) {
#pragma acc loop worker
  for (j = 1; j <= ny2; j++) {
#pragma acc loop vector
    for (i = 1; i <= nx2; i++) {
      ru1 = c3c4 * rho_i[k][j][i-1];
      ru2 = c3c4 * rho_i[k][j][i];
      ru3 = c3c4 * rho_i[k][j][i+1];
      rhon1 = dx2 + con43 * ru1;
      rhon2 = dx5 + c1c5 * ru1;
      rhon3 = dxmax + ru1;
      lhs[0][k][j][i] = 0.0 - dttx2 * cv[i-1] - dttx1 * rhon1;
      lhs[1][k][j][i] = 1.0 + c2dttx1 * (dx2 + con43 * ru2);
      lhs[2][k][j][i] = dttx2 * cv[i+1] - dttx1 * (dx2 + con43 * ru3);
      lhs[3][k][j][i] = 0.0 - dttx1 * (dx5 + c1c5 * ru3);
      lhs[4][k][j][i] = 1.0 + c2dttx1 * (dx5 + c1c5 * ru2) + comz1;
      lhsp[0][k][j][i] = lhs[0][k][j][i] - dttx2 * speed[k][j][i-1];
      lhsp[2][k][j][i] = lhs[2][k][j][i] + dttx2 * speed[k][j][i+1];
      lhsm[0][k][j][i] = lhs[0][k][j][i] + dttx2 * speed[k][j][i-1];
      lhsm[2][k][j][i] = lhs[2][k][j][i] - dttx2 * speed[k][j][i+1];
    }}}
"""

#: x_solve: the Thomas-algorithm forward elimination step along x.
SP_XSOLVE_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k <= nz2; k++) {
#pragma acc loop vector
  for (j = 1; j <= ny2; j++) {
    fac1 = 1.0 / lhs[2][k][j][i];
    lhs[3][k][j][i] = fac1 * lhs[3][k][j][i];
    lhs[4][k][j][i] = fac1 * lhs[4][k][j][i];
    rhs[0][k][j][i] = fac1 * rhs[0][k][j][i];
    rhs[1][k][j][i] = fac1 * rhs[1][k][j][i];
    rhs[2][k][j][i] = fac1 * rhs[2][k][j][i];
    lhs[2][k][j][i1] = lhs[2][k][j][i1] - lhs[1][k][j][i1] * lhs[3][k][j][i];
    lhs[3][k][j][i1] = lhs[3][k][j][i1] - lhs[1][k][j][i1] * lhs[4][k][j][i];
    rhs[0][k][j][i1] = rhs[0][k][j][i1] - lhs[1][k][j][i1] * rhs[0][k][j][i];
    rhs[1][k][j][i1] = rhs[1][k][j][i1] - lhs[1][k][j][i1] * rhs[1][k][j][i];
    rhs[2][k][j][i1] = rhs[2][k][j][i1] - lhs[1][k][j][i1] * rhs[2][k][j][i];
  }}
"""

#: ninvr: multiply by the inverse of the N matrix (block of scalar updates).
SP_NINVR_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k <= nz2; k++) {
#pragma acc loop worker
  for (j = 1; j <= ny2; j++) {
#pragma acc loop vector
    for (i = 1; i <= nx2; i++) {
      r1 = rhs[0][k][j][i];
      r2 = rhs[1][k][j][i];
      r3 = rhs[2][k][j][i];
      r4 = rhs[3][k][j][i];
      r5 = rhs[4][k][j][i];
      t1 = bt * r3;
      t2 = 0.5 * (r4 + r5);
      rhs[0][k][j][i] = -r2;
      rhs[1][k][j][i] = r1;
      rhs[2][k][j][i] = bt * (r4 - r5);
      rhs[3][k][j][i] = -t1 + t2;
      rhs[4][k][j][i] = t1 + t2;
    }}}
"""

_GRID = 162.0 ** 3
_PLANE = 162.0 ** 2
_STEPS = 400

SP = BenchmarkSpec(
    name="SP",
    suite="npb",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=65,
    problem_class="C",
    kernels=(
        KernelSpec("sp_lhsx", SP_LHSX_SOURCE, _GRID, _STEPS, repeat=6, statement_scale=3.0),
        KernelSpec("sp_xsolve", SP_XSOLVE_SOURCE, _PLANE, _STEPS * 3, repeat=9, statement_scale=2.0),
        KernelSpec("sp_ninvr", SP_NINVR_SOURCE, _GRID, _STEPS, repeat=6),
    ),
    paper_original_time={"nvhpc": 10.00, "gcc": 12.00},
)
