"""NPB FT — 3-D FFT (CLASS C).

The Stockham butterfly kernels read pairs of complex values and write two
results; all-to-all access, bandwidth bound, modest reuse.  The paper sees
0.94×–1.04× on FT.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["FT", "FT_BUTTERFLY_SOURCE", "FT_EVOLVE_SOURCE"]


#: One radix-2 Stockham butterfly stage over a line of the 3-D grid.
FT_BUTTERFLY_SOURCE = """
#pragma acc parallel loop gang
for (k = 0; k < d3; k++) {
#pragma acc loop vector
  for (j = 0; j < lk; j++) {
    u1r = u_r[ku + j];
    u1i = u_i[ku + j];
    x11r = xr[k][i11 + j];
    x11i = xi[k][i11 + j];
    x21r = xr[k][i12 + j];
    x21i = xi[k][i12 + j];
    yr[k][i21 + j] = x11r + x21r;
    yi[k][i21 + j] = x11i + x21i;
    yr[k][i22 + j] = u1r * (x11r - x21r) - u1i * (x11i - x21i);
    yi[k][i22 + j] = u1i * (x11r - x21r) + u1r * (x11i - x21i);
  }
}
"""

#: The evolve kernel: multiply by the exponential time-evolution factor.
FT_EVOLVE_SOURCE = """
#pragma acc parallel loop gang
for (k = 0; k < d3; k++) {
#pragma acc loop worker
  for (j = 0; j < d2; j++) {
#pragma acc loop vector
    for (i = 0; i < d1; i++) {
      u1r = u0_r[k][j][i] * twiddle[k][j][i];
      u1i = u0_i[k][j][i] * twiddle[k][j][i];
      u0_r[k][j][i] = u1r;
      u0_i[k][j][i] = u1i;
      u1_r[k][j][i] = u1r;
      u1_i[k][j][i] = u1i;
    }}}
"""

_GRID = 512.0 * 512.0 * 512.0  # CLASS C
_ITERS = 20

FT = BenchmarkSpec(
    name="FT",
    suite="npb",
    programming_model="acc",
    compute="FFT",
    access="All-to-All",
    num_kernels=12,
    problem_class="C",
    kernels=(
        KernelSpec("ft_butterfly", FT_BUTTERFLY_SOURCE, _GRID, _ITERS * 3, repeat=6),
        KernelSpec("ft_evolve", FT_EVOLVE_SOURCE, _GRID, _ITERS, repeat=3),
    ),
    paper_original_time={"nvhpc": 3.06, "gcc": 3.10},
)
