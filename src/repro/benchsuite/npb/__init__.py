"""NAS Parallel Benchmarks (OpenACC/C, CLASS C) — paper Table II."""

from repro.benchsuite.npb.bt import BT
from repro.benchsuite.npb.cg import CG
from repro.benchsuite.npb.ep import EP
from repro.benchsuite.npb.ft import FT
from repro.benchsuite.npb.lu import LU
from repro.benchsuite.npb.mg import MG
from repro.benchsuite.npb.sp import SP

__all__ = ["BT", "CG", "EP", "FT", "LU", "MG", "SP"]
