"""NPB EP — embarrassingly parallel random-number kernel (CLASS C).

Pure arithmetic (linear congruential generator + acceptance test), no reuse
between iterations; compute bound.  The paper reports ~1.0× on NVHPC and a
large CSE win on the SPEC variant of ep for GCC (1.82×) because GCC does
not clean up the repeated constant arithmetic itself.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["EP", "EP_GAUSSIAN_SOURCE", "EP_RNG_SOURCE"]


#: The Marsaglia polar / Box-Muller style acceptance step of EP.
EP_GAUSSIAN_SOURCE = """
#pragma acc parallel loop gang vector_length(128)
for (i = 0; i < nk; i++) {
  x1 = 2.0 * xs[i] - 1.0;
  x2 = 2.0 * ys[i] - 1.0;
  t1 = x1 * x1 + x2 * x2;
  if (t1 <= 1.0) {
    t2 = sqrt(-2.0 * log(t1) / t1);
    t3 = x1 * t2;
    t4 = x2 * t2;
    gx[i] = t3;
    gy[i] = t4;
    qq[i] = t3 * t3 + t4 * t4;
  }
}
"""

#: The linear congruential random-number generation sweep.
EP_RNG_SOURCE = """
#pragma acc parallel loop gang vector_length(128)
for (i = 0; i < nk; i++) {
  t1 = r23 * a1 * xk[i];
  a2 = a1 * xk[i] - t23 * t1;
  t1 = r23 * xk[i];
  x1 = t1 * r23 + a2 * r23;
  t2 = r46 * x1 * x1 + a2 * x1;
  xk[i] = x1 * t46 - t2 * r46 + a2;
  qq[i] = x1 * t2 + a2 * r46;
}
"""

_SAMPLES = 2.0 ** 32 / 65536.0   # CLASS C pairs per batch
_BATCHES = 256

EP = BenchmarkSpec(
    name="EP",
    suite="npb",
    programming_model="acc",
    compute="Random Num",
    access="Parallel",
    num_kernels=4,
    problem_class="C",
    kernels=(
        KernelSpec("ep_gaussian", EP_GAUSSIAN_SOURCE, _SAMPLES, _BATCHES, repeat=2),
        KernelSpec("ep_rng", EP_RNG_SOURCE, _SAMPLES, _BATCHES, repeat=2),
    ),
    paper_original_time={"nvhpc": 2.65, "gcc": 3.35},
)
