"""NPB BT — block tri-diagonal CFD solver (CLASS C).

The time-dominant kernels build 5×5 block Jacobians along each sweep
direction (``z_solve.c`` in the paper's Listing 2): long straight-line
sequences that reload ``fjacZ``/``njacZ`` blocks and recompute ``dt * tz?``
factors over and over.  Those kernels are memory-latency-bound and are
exactly where bulk load buys the paper its 2.2× GCC speedup.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["BT", "BT_JACOBIAN_SOURCE", "BT_SOLVE_SOURCE", "BT_RHS_SOURCE", "BT_ADD_SOURCE"]


#: The lhsZ Jacobian construction kernel (paper Listing 2, abridged to the
#: first two block rows; the real kernel continues for 75 statements).
BT_JACOBIAN_SOURCE = """
#pragma acc parallel loop gang num_gangs(ksize-1) num_workers(4) vector_length(32)
for (k = 1; k <= ksize-1; k++) {
#pragma acc loop worker
  for (i = 1; i <= gp02; i++) {
#pragma acc loop vector
    for (j = 1; j <= gp12; j++) {
      temp1 = dt * tz1;
      temp2 = dt * tz2;
      lhsZ[0][0][k][i][j] = - temp2 * fjacZ[0][0][k-1][i][j]
        - temp1 * njacZ[0][0][k-1][i][j] - temp1 * dz1;
      lhsZ[0][1][k][i][j] = - temp2 * fjacZ[0][1][k-1][i][j]
        - temp1 * njacZ[0][1][k-1][i][j];
      lhsZ[0][2][k][i][j] = - temp2 * fjacZ[0][2][k-1][i][j]
        - temp1 * njacZ[0][2][k-1][i][j];
      lhsZ[0][3][k][i][j] = - temp2 * fjacZ[0][3][k-1][i][j]
        - temp1 * njacZ[0][3][k-1][i][j];
      lhsZ[0][4][k][i][j] = - temp2 * fjacZ[0][4][k-1][i][j]
        - temp1 * njacZ[0][4][k-1][i][j];
      lhsZ[1][0][k][i][j] = - temp2 * fjacZ[1][0][k-1][i][j]
        - temp1 * njacZ[1][0][k-1][i][j];
      lhsZ[1][1][k][i][j] = - temp2 * fjacZ[1][1][k-1][i][j]
        - temp1 * njacZ[1][1][k-1][i][j] - temp1 * dz2;
      lhsZ[1][2][k][i][j] = - temp2 * fjacZ[1][2][k-1][i][j]
        - temp1 * njacZ[1][2][k-1][i][j];
      lhsZ[1][3][k][i][j] = - temp2 * fjacZ[1][3][k-1][i][j]
        - temp1 * njacZ[1][3][k-1][i][j];
      lhsZ[1][4][k][i][j] = - temp2 * fjacZ[1][4][k-1][i][j]
        - temp1 * njacZ[1][4][k-1][i][j];
      lhsZ[2][2][k][i][j] = dt * tz2 * 2.0 + temp2 * fjacZ[2][2][k-1][i][j]
        + temp1 * 2.0 * njacZ[2][2][k-1][i][j] + temp1 * dz3;
      lhsZ[3][3][k][i][j] = dt * tz2 * 2.0 + temp2 * fjacZ[3][3][k-1][i][j]
        + temp1 * 2.0 * njacZ[3][3][k-1][i][j] + temp1 * dz4;
      lhsZ[4][4][k][i][j] = dt * tz2 * 2.0 + temp2 * fjacZ[4][4][k-1][i][j]
        + temp1 * 2.0 * njacZ[4][4][k-1][i][j] + temp1 * dz5;
    }}}
"""

#: Back-substitution along z: dependent block updates of the rhs.
BT_SOLVE_SOURCE = """
#pragma acc parallel loop gang num_workers(4) vector_length(32)
for (i = 1; i <= gp02; i++) {
#pragma acc loop worker
  for (j = 1; j <= gp12; j++) {
#pragma acc loop vector
    for (m = 0; m < 5; m++) {
      rhs[m][ksize][i][j] = rhs[m][ksize][i][j]
        - lhsZ[m][0][ksize][i][j] * rhs[0][ksize-1][i][j]
        - lhsZ[m][1][ksize][i][j] * rhs[1][ksize-1][i][j]
        - lhsZ[m][2][ksize][i][j] * rhs[2][ksize-1][i][j]
        - lhsZ[m][3][ksize][i][j] * rhs[3][ksize-1][i][j]
        - lhsZ[m][4][ksize][i][j] * rhs[4][ksize-1][i][j];
    }}}
"""

#: The compute_rhs flux-difference kernel (xi direction, energy equation).
BT_RHS_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k <= gp22; k++) {
#pragma acc loop worker
  for (j = 1; j <= gp12; j++) {
#pragma acc loop vector
    for (i = 1; i <= gp02; i++) {
      uijk = us[k][j][i];
      up1 = us[k][j][i+1];
      um1 = us[k][j][i-1];
      rhs[1][k][j][i] = rhs[1][k][j][i] + dx2tx1 *
        (u[1][k][j][i+1] - 2.0 * u[1][k][j][i] + u[1][k][j][i-1]) -
        xxcon2 * con43 * (up1 - 2.0 * uijk + um1) -
        tx2 * (u[1][k][j][i+1] * up1 - u[1][k][j][i-1] * um1 +
        (u[4][k][j][i+1] - square[k][j][i+1] -
         u[4][k][j][i-1] + square[k][j][i-1]) * c2);
      rhs[2][k][j][i] = rhs[2][k][j][i] + dx3tx1 *
        (u[2][k][j][i+1] - 2.0 * u[2][k][j][i] + u[2][k][j][i-1]) +
        xxcon2 * (vs[k][j][i+1] - 2.0 * vs[k][j][i] + vs[k][j][i-1]) -
        tx2 * (u[2][k][j][i+1] * up1 - u[2][k][j][i-1] * um1);
      rhs[3][k][j][i] = rhs[3][k][j][i] + dx4tx1 *
        (u[3][k][j][i+1] - 2.0 * u[3][k][j][i] + u[3][k][j][i-1]) +
        xxcon2 * (ws[k][j][i+1] - 2.0 * ws[k][j][i] + ws[k][j][i-1]) -
        tx2 * (u[3][k][j][i+1] * up1 - u[3][k][j][i-1] * um1);
    }}}
"""

#: The trivial `add` kernel: u += rhs (bandwidth bound, nothing to gain).
BT_ADD_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k <= gp22; k++) {
#pragma acc loop worker
  for (j = 1; j <= gp12; j++) {
#pragma acc loop vector
    for (i = 1; i <= gp02; i++) {
      u[0][k][j][i] = u[0][k][j][i] + rhs[0][k][j][i];
      u[1][k][j][i] = u[1][k][j][i] + rhs[1][k][j][i];
      u[2][k][j][i] = u[2][k][j][i] + rhs[2][k][j][i];
      u[3][k][j][i] = u[3][k][j][i] + rhs[3][k][j][i];
      u[4][k][j][i] = u[4][k][j][i] + rhs[4][k][j][i];
    }}}
"""

_GRID = 162.0 ** 3  # CLASS C grid
_STEPS = 200

BT = BenchmarkSpec(
    name="BT",
    suite="npb",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=46,
    problem_class="C",
    kernels=(
        KernelSpec("bt_jacobian_z", BT_JACOBIAN_SOURCE, _GRID, _STEPS, repeat=3, statement_scale=5.0),
        KernelSpec("bt_solve_z", BT_SOLVE_SOURCE, _GRID / 162.0 * 5, _STEPS, repeat=9, statement_scale=3.0),
        KernelSpec("bt_rhs_x", BT_RHS_SOURCE, _GRID, _STEPS, repeat=6, statement_scale=2.0),
        KernelSpec("bt_add", BT_ADD_SOURCE, _GRID, _STEPS, repeat=4),
    ),
    paper_original_time={"nvhpc": 14.85, "gcc": 28.04},
)
