"""NPB MG — V-cycle multigrid Poisson solver (CLASS C).

27-point stencil smoother and restriction/prolongation kernels with long-
and short-stride accesses; close to the bandwidth roofline already, so the
paper measures 0.98×–1.05×.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["MG", "MG_RESID_SOURCE", "MG_PSINV_SOURCE"]


#: resid: r = v - A u with the 27-point operator (partial sums u1/u2).
MG_RESID_SOURCE = """
#pragma acc parallel loop gang
for (i3 = 1; i3 < n3 - 1; i3++) {
#pragma acc loop worker
  for (i2 = 1; i2 < n2 - 1; i2++) {
#pragma acc loop vector
    for (i1 = 0; i1 < n1; i1++) {
      u1[i1] = u[i3][i2-1][i1] + u[i3][i2+1][i1]
             + u[i3-1][i2][i1] + u[i3+1][i2][i1];
      u2[i1] = u[i3-1][i2-1][i1] + u[i3-1][i2+1][i1]
             + u[i3+1][i2-1][i1] + u[i3+1][i2+1][i1];
      r[i3][i2][i1] = v[i3][i2][i1]
        - a0 * u[i3][i2][i1]
        - a2 * (u2[i1] + u1[i1-1] + u1[i1+1])
        - a3 * (u2[i1-1] + u2[i1+1]);
    }}}
"""

#: psinv: the smoother application (same stencil shape on r).
MG_PSINV_SOURCE = """
#pragma acc parallel loop gang
for (i3 = 1; i3 < n3 - 1; i3++) {
#pragma acc loop worker
  for (i2 = 1; i2 < n2 - 1; i2++) {
#pragma acc loop vector
    for (i1 = 1; i1 < n1 - 1; i1++) {
      r1[i1] = r[i3][i2-1][i1] + r[i3][i2+1][i1]
             + r[i3-1][i2][i1] + r[i3+1][i2][i1];
      r2[i1] = r[i3-1][i2-1][i1] + r[i3-1][i2+1][i1]
             + r[i3+1][i2-1][i1] + r[i3+1][i2+1][i1];
      u[i3][i2][i1] = u[i3][i2][i1]
        + c0 * r[i3][i2][i1]
        + c1 * (r[i3][i2][i1-1] + r[i3][i2][i1+1] + r1[i1])
        + c2 * (r2[i1] + r1[i1-1] + r1[i1+1]);
    }}}
"""

_GRID = 512.0 ** 3  # CLASS C top level
_ITERS = 20

MG = BenchmarkSpec(
    name="MG",
    suite="npb",
    programming_model="acc",
    compute="Poisson Eq",
    access="Long & Short",
    num_kernels=16,
    problem_class="C",
    kernels=(
        KernelSpec("mg_resid", MG_RESID_SOURCE, _GRID / 8, _ITERS, repeat=8),
        KernelSpec("mg_psinv", MG_PSINV_SOURCE, _GRID / 8, _ITERS, repeat=8),
    ),
    paper_original_time={"nvhpc": 0.79, "gcc": 0.79},
)
