"""NPB CG — conjugate gradient with an irregular sparse matrix (CLASS C).

Dominated by the sparse matrix–vector product with indirect accesses
through ``colidx`` (no reuse to exploit) and by short vector updates; the
paper measures essentially no benefit on CG (1.00×–1.02×).
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["CG", "CG_SPMV_SOURCE", "CG_AXPY_SOURCE", "CG_NORM_SOURCE"]


#: Sparse matrix-vector product: w = A p (irregular gathers).
CG_SPMV_SOURCE = """
#pragma acc parallel loop gang
for (j = 0; j < lastrow - firstrow + 1; j++) {
  double suml = 0.0;
#pragma acc loop vector
  for (k = rowstr[j]; k < rowstr[j+1]; k++) {
    suml = suml + a[k] * p[colidx[k]];
  }
  w[j] = suml;
}
"""

#: The p / r / x vector updates (axpy-style, bandwidth bound).
CG_AXPY_SOURCE = """
#pragma acc parallel loop gang vector_length(128)
for (j = 0; j < lastcol - firstcol + 1; j++) {
  z[j] = z[j] + alpha * p[j];
  r[j] = r[j] - alpha * q[j];
  p[j] = r[j] + beta * p[j];
}
"""

#: Residual norm contribution (reduction body).
CG_NORM_SOURCE = """
#pragma acc parallel loop gang vector_length(128)
for (j = 0; j < lastcol - firstcol + 1; j++) {
  suml = x[j] - r[j];
  d[j] = suml * suml;
}
"""

_ROWS = 150000.0       # CLASS C
_NNZ_PER_ROW = 220.0
_ITERS = 75

CG = BenchmarkSpec(
    name="CG",
    suite="npb",
    programming_model="acc",
    compute="Eigenvalue",
    access="Irregular",
    num_kernels=16,
    problem_class="C",
    kernels=(
        KernelSpec("cg_spmv", CG_SPMV_SOURCE, _ROWS * _NNZ_PER_ROW, _ITERS, repeat=2),
        KernelSpec("cg_axpy", CG_AXPY_SOURCE, _ROWS, _ITERS * 2, repeat=8),
        KernelSpec("cg_norm", CG_NORM_SOURCE, _ROWS, _ITERS, repeat=6),
    ),
    paper_original_time={"nvhpc": 1.27, "gcc": 26.17},
)
