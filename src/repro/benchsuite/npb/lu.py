"""NPB LU — lower-upper symmetric Gauss-Seidel CFD solver (CLASS C).

Like BT, the dominant kernels (``jacld``/``jacu``) assemble block Jacobians
with heavy redundant loads of the 5-component state vector and repeated
``tmp1/tmp2/tmp3`` powers; the paper measures 1.13×–1.20× on NVHPC and
1.60×–1.64× on GCC with ACCSAT.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec

__all__ = ["LU", "LU_JACLD_SOURCE", "LU_BLTS_SOURCE", "LU_RHS_SOURCE"]


#: jacld: build the lower-triangular block Jacobian (first block row shown).
LU_JACLD_SOURCE = """
#pragma acc parallel loop gang num_workers(4) vector_length(32)
for (j = jst; j <= jend; j++) {
#pragma acc loop worker
  for (i = ist; i <= iend; i++) {
    tmp1 = rho_i[k][j][i];
    tmp2 = tmp1 * tmp1;
    tmp3 = tmp1 * tmp2;
    d[0][0][j][i] = 1.0 + dt * 2.0 * (tx1 * dx1 + ty1 * dy1 + tz1 * dz1);
    d[1][0][j][i] = -dt * 2.0 * (tx1 + ty1 + tz1) * c34 * tmp2 * u[1][k][j][i];
    d[1][1][j][i] = 1.0 + dt * 2.0 * c34 * tmp1 * (tx1 + ty1 + tz1)
      + dt * 2.0 * (tx1 * dx2 + ty1 * dy2 + tz1 * dz2);
    d[2][0][j][i] = -dt * 2.0 * (tx1 + ty1 + tz1) * c34 * tmp2 * u[2][k][j][i];
    d[2][2][j][i] = 1.0 + dt * 2.0 * c34 * tmp1 * (tx1 + ty1 + tz1)
      + dt * 2.0 * (tx1 * dx3 + ty1 * dy3 + tz1 * dz3);
    d[3][0][j][i] = -dt * 2.0 * (tx1 + ty1 + tz1) * c34 * tmp2 * u[3][k][j][i];
    d[3][3][j][i] = 1.0 + dt * 2.0 * c34 * tmp1 * (tx1 + ty1 + tz1)
      + dt * 2.0 * (tx1 * dx4 + ty1 * dy4 + tz1 * dz4);
    d[4][0][j][i] = -dt * 2.0 * (((tx1 * (r43 * c34 - c1345)
      + ty1 * (c34 - c1345) + tz1 * (c34 - c1345)) * (u[1][k][j][i] * u[1][k][j][i])
      + (tx1 * (c34 - c1345) + ty1 * (r43 * c34 - c1345) + tz1 * (c34 - c1345))
        * (u[2][k][j][i] * u[2][k][j][i])) * tmp3
      - (tx1 + ty1 + tz1) * c1345 * tmp2 * u[4][k][j][i]);
    d[4][4][j][i] = 1.0 + dt * 2.0 * (tx1 + ty1 + tz1) * c1345 * tmp1
      + dt * 2.0 * (tx1 * dx5 + ty1 * dy5 + tz1 * dz5);
  }}
"""

#: blts: block lower-triangular solve (dependent update).
LU_BLTS_SOURCE = """
#pragma acc parallel loop gang
for (j = jst; j <= jend; j++) {
#pragma acc loop vector
  for (i = ist; i <= iend; i++) {
    rsd[0][k][j][i] = rsd[0][k][j][i]
      - omega * (a[0][0][j][i] * rsd[0][k-1][j][i]
               + a[0][1][j][i] * rsd[1][k-1][j][i]
               + a[0][2][j][i] * rsd[2][k-1][j][i]
               + a[0][3][j][i] * rsd[3][k-1][j][i]
               + a[0][4][j][i] * rsd[4][k-1][j][i]);
    rsd[1][k][j][i] = rsd[1][k][j][i]
      - omega * (a[1][0][j][i] * rsd[0][k-1][j][i]
               + a[1][1][j][i] * rsd[1][k-1][j][i]
               + a[1][2][j][i] * rsd[2][k-1][j][i]
               + a[1][3][j][i] * rsd[3][k-1][j][i]
               + a[1][4][j][i] * rsd[4][k-1][j][i]);
  }}
"""

#: rhs: one directional flux-difference sweep of the residual.
LU_RHS_SOURCE = """
#pragma acc parallel loop gang
for (k = 1; k < nz - 1; k++) {
#pragma acc loop worker
  for (j = jst; j <= jend; j++) {
#pragma acc loop vector
    for (i = ist; i <= iend; i++) {
      rsd[0][k][j][i] = rsd[0][k][j][i]
        - dssp * (u[0][k][j][i-2] - 4.0 * u[0][k][j][i-1]
                + 6.0 * u[0][k][j][i] - 4.0 * u[0][k][j][i+1] + u[0][k][j][i+2]);
      rsd[1][k][j][i] = rsd[1][k][j][i]
        - dssp * (u[1][k][j][i-2] - 4.0 * u[1][k][j][i-1]
                + 6.0 * u[1][k][j][i] - 4.0 * u[1][k][j][i+1] + u[1][k][j][i+2]);
      rsd[2][k][j][i] = rsd[2][k][j][i]
        - dssp * (u[2][k][j][i-2] - 4.0 * u[2][k][j][i-1]
                + 6.0 * u[2][k][j][i] - 4.0 * u[2][k][j][i+1] + u[2][k][j][i+2]);
    }}}
"""

_PLANE = 162.0 ** 2
_GRID = 162.0 ** 3
_STEPS = 250

LU = BenchmarkSpec(
    name="LU",
    suite="npb",
    programming_model="acc",
    compute="CFD",
    access="Halo (3D)",
    num_kernels=59,
    problem_class="C",
    kernels=(
        KernelSpec("lu_jacld", LU_JACLD_SOURCE, _PLANE, _STEPS * 162, repeat=4, statement_scale=4.0),
        KernelSpec("lu_blts", LU_BLTS_SOURCE, _PLANE, _STEPS * 162, repeat=4, statement_scale=2.5),
        KernelSpec("lu_rhs", LU_RHS_SOURCE, _GRID, _STEPS, repeat=6, statement_scale=1.5),
    ),
    paper_original_time={"nvhpc": 15.36, "gcc": 24.86},
)
