"""Data structures produced by SSA construction.

The three classes form a hierarchy:

``KernelSSA``  — the SSA form of one innermost-parallel-loop body; owns
``StraightLineGroup`` — a maximal run of consecutive simple assignment
statements inside one block (control flow starts a new group); owns
``AssignmentInfo`` — one original assignment statement together with its
SSA right-hand-side term and enough location information for the code
generator to rewrite it in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.egraph.language import Term
from repro.frontend import cast as C

__all__ = ["AssignmentInfo", "StraightLineGroup", "KernelSSA"]


@dataclass
class AssignmentInfo:
    """One original assignment statement in SSA form."""

    #: The original AST statement (:class:`ExprStmt` or :class:`Decl`).
    stmt: C.Stmt
    #: Index of the statement inside its owning block's ``stmts`` list.
    stmt_index: int
    #: Printable template of the left-hand side, e.g. ``lhsZ[{0}][{1}]`` for
    #: array stores (the ``{i}`` holes are the index sub-terms) or a plain
    #: variable name for scalar assignments.
    lhs_template: str
    #: Index terms of the left-hand side (empty for scalars).
    lhs_indices: List[Term] = field(default_factory=list)
    #: SSA right-hand-side term.
    term: Optional[Term] = None
    #: Sequential SSA id (unique within the kernel).
    ssa_id: int = 0
    #: True for array/member/pointer stores, False for scalar assignments.
    is_store: bool = False
    #: True when the statement is a declaration with initializer.
    is_decl: bool = False
    #: Name of the scalar variable defined (None for stores).
    var_name: Optional[str] = None
    #: For store assignments, the full ``store(...)`` term (the new array
    #: version); used by the code generator to anchor load dependencies.
    store_term: Optional[Term] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AssignmentInfo(#{self.ssa_id} {self.lhs_template} := {self.term})"


@dataclass
class StraightLineGroup:
    """A maximal run of consecutive simple assignments within one block.

    All statements of a group execute unconditionally and in order, so the
    code generator is free to insert temporaries anywhere inside the group
    and to reorder loads (bulk load) without changing semantics.
    """

    #: The block whose ``stmts`` list contains this group's statements.
    block: C.Block
    #: Index of the first statement of the group within the block.
    start_index: int = 0
    assignments: List[AssignmentInfo] = field(default_factory=list)
    #: Nesting depth relative to the innermost parallel loop body (0 = the
    #: body itself); used by reports and by scope-aware temp declaration.
    depth: int = 0

    @property
    def end_index(self) -> int:
        """Index one past the last statement of the group."""

        if not self.assignments:
            return self.start_index
        return self.assignments[-1].stmt_index + 1

    def __len__(self) -> int:
        return len(self.assignments)


@dataclass
class KernelSSA:
    """The SSA form of one innermost-parallel-loop body."""

    #: The loop body block this SSA form was built from.
    body: C.Block
    groups: List[StraightLineGroup] = field(default_factory=list)
    #: φ terms created at control-flow joins, keyed by their payload id.
    phis: Dict[str, Term] = field(default_factory=dict)
    #: Total number of SSA assignments (including ones in nested groups).
    num_assignments: int = 0
    #: Wall-clock seconds spent building the SSA form.
    build_time: float = 0.0

    def all_assignments(self) -> List[AssignmentInfo]:
        """All assignments of all groups, in program order."""

        result: List[AssignmentInfo] = []
        for group in self.groups:
            result.extend(group.assignments)
        return result

    def terms(self) -> List[Term]:
        """The right-hand-side terms of every assignment, in program order."""

        return [a.term for a in self.all_assignments() if a.term is not None]

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by the saturation report."""

        terms = self.terms()
        return {
            "groups": len(self.groups),
            "assignments": len(terms),
            "phis": len(self.phis),
            "term_nodes": sum(t.size() for t in terms),
            "loads": sum(
                1 for t in terms for node in t.walk() if node.op == "load"
            ),
            "stores": sum(1 for a in self.all_assignments() if a.is_store),
        }
