"""Static single-assignment construction for directive-based kernels.

The SSA builder (paper §IV) converts the body of an innermost parallel loop
into a sequence of *assignments in SSA form*, expressed as terms of the
e-graph language:

* every scalar assignment / array store gets a fresh SSA value,
* loads refer to the latest reaching definition along the data flow,
* ``if`` joins introduce gated φ terms and loops introduce loop-φ terms,
* array stores become ``store`` terms threading an array *version*, so
  loads before and after a store never alias incorrectly.

The output (:class:`KernelSSA`) keeps a precise link back to the original
AST statements so that the code generator can rewrite right-hand sides in
place while preserving the loop structure and the directives.
"""

from repro.ssa.form import AssignmentInfo, KernelSSA, StraightLineGroup
from repro.ssa.builder import SSABuilder, build_ssa, expression_to_term

__all__ = [
    "AssignmentInfo",
    "KernelSSA",
    "SSABuilder",
    "StraightLineGroup",
    "build_ssa",
    "expression_to_term",
]
