"""SSA construction from the body of an innermost parallel loop.

The builder walks the statements of the loop body in program order and
maintains an *environment* mapping every scalar variable to the term that
currently holds its value and every array to its current *version* term.

* A scalar assignment ``x = e`` binds ``x`` to the term of ``e`` — later
  reads of ``x`` therefore share the e-class of ``e`` (this is exactly the
  "assign both the ID and the expression to the same e-class" step of the
  paper).
* An array store ``A[i] = e`` creates a new version term
  ``store(A_version, i, e)``; loads of ``A`` performed afterwards refer to
  the new version and therefore can never be reordered above the store.
* ``if`` joins bind every variable modified in either branch to a gated φ
  term ``phi(cond, then_value, else_value)``.
* Loops bind every loop-carried variable to an opaque loop value while the
  body is processed (so no value from before the loop leaks into the body)
  and to a ``phi-loop(cond, body_value, init_value)`` term afterwards.

Statements that are not simple assignments (nested loops, branches, calls
with unknown effects) end the current straight-line group; their bodies are
processed recursively so their assignments are optimized too.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.egraph.language import Term
from repro.frontend import cast as C
from repro.ssa.form import AssignmentInfo, KernelSSA, StraightLineGroup

__all__ = ["SSABuilder", "build_ssa", "expression_to_term"]


class _Env:
    """The SSA environment: current value/version term per name."""

    def __init__(self) -> None:
        self.scalars: Dict[str, Term] = {}
        self.arrays: Dict[str, Term] = {}

    def scalar(self, name: str) -> Term:
        return self.scalars.get(name, Term.sym(name))

    def array(self, name: str) -> Term:
        # auto-register so that barriers (unknown calls) can later invalidate
        # every array the kernel has touched
        return self.arrays.setdefault(name, Term.sym(name))

    def copy(self) -> "_Env":
        dup = _Env()
        dup.scalars = dict(self.scalars)
        dup.arrays = dict(self.arrays)
        return dup


class SSABuilder:
    """Build the :class:`KernelSSA` form of a loop body."""

    def __init__(self) -> None:
        self.env = _Env()
        self.groups: List[StraightLineGroup] = []
        self.phis: Dict[str, Term] = {}
        self._ssa_counter = 0
        self._phi_counter = 0
        self._loop_counter = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def build(self, body: C.Block) -> KernelSSA:
        """Build SSA for the given loop body block."""

        start = time.perf_counter()
        self._process_block(body, depth=0)
        ssa = KernelSSA(
            body=body,
            groups=self.groups,
            phis=self.phis,
            num_assignments=self._ssa_counter,
            build_time=time.perf_counter() - start,
        )
        return ssa

    # ------------------------------------------------------------------
    # Statement walking
    # ------------------------------------------------------------------

    def _process_block(self, block: C.Block, depth: int) -> None:
        current: Optional[StraightLineGroup] = None

        def close_group() -> None:
            nonlocal current
            if current is not None and current.assignments:
                self.groups.append(current)
            current = None

        for index, stmt in enumerate(block.stmts):
            inner = stmt
            # Directives never carry assignments themselves; the guarded
            # statement (if any) is control flow and is processed below.
            if isinstance(inner, C.Pragma):
                close_group()
                if inner.stmt is not None:
                    self._process_control(inner.stmt, depth)
                continue

            info = self._try_assignment(inner, block, index)
            if info is not None:
                if current is None:
                    current = StraightLineGroup(block, index, [], depth)
                current.assignments.append(info)
                continue

            close_group()
            self._process_control(inner, depth)

        close_group()

    def _process_control(self, stmt: C.Stmt, depth: int) -> None:
        """Handle a non-assignment statement (control flow or barrier)."""

        if isinstance(stmt, C.Block):
            self._process_block(stmt, depth + 1)
            return
        if isinstance(stmt, C.If):
            self._process_if(stmt, depth)
            return
        if isinstance(stmt, (C.For, C.While, C.DoWhile)):
            self._process_loop(stmt, depth)
            return
        if isinstance(stmt, C.Pragma):
            if stmt.stmt is not None:
                self._process_control(stmt.stmt, depth)
            return
        if isinstance(stmt, C.Decl):
            # declaration without (pure) initializer: fresh unknown value
            self.env.scalars[stmt.name] = Term.sym(stmt.name)
            return
        if isinstance(stmt, C.ExprStmt):
            # a call or other side-effecting expression: conservative barrier
            self._invalidate_arrays()
            return
        # return / break / continue / anything else: nothing to track
        return

    # ------------------------------------------------------------------
    # if / loops
    # ------------------------------------------------------------------

    def _process_if(self, stmt: C.If, depth: int) -> None:
        cond_term = self._safe_expr_term(stmt.cond)
        before = self.env.copy()

        self._process_branch(stmt.then, depth)
        env_then = self.env

        self.env = before.copy()
        if stmt.otherwise is not None:
            self._process_branch(stmt.otherwise, depth)
        env_else = self.env

        merged = _Env()
        merged.scalars = dict(before.scalars)
        merged.arrays = dict(before.arrays)
        for name in set(env_then.scalars) | set(env_else.scalars) | set(before.scalars):
            t_then = env_then.scalars.get(name, Term.sym(name))
            t_else = env_else.scalars.get(name, Term.sym(name))
            if t_then == t_else:
                if name in env_then.scalars:
                    merged.scalars[name] = t_then
                continue
            merged.scalars[name] = self._make_phi("phi", name, cond_term, t_then, t_else)
        for name in set(env_then.arrays) | set(env_else.arrays) | set(before.arrays):
            t_then = env_then.arrays.get(name, Term.sym(name))
            t_else = env_else.arrays.get(name, Term.sym(name))
            if t_then == t_else:
                if name in env_then.arrays:
                    merged.arrays[name] = t_then
                continue
            merged.arrays[name] = self._make_phi("phi", name, cond_term, t_then, t_else)
        self.env = merged

    def _process_branch(self, stmt: C.Stmt, depth: int) -> None:
        if isinstance(stmt, C.Block):
            self._process_block(stmt, depth + 1)
        else:
            self._process_block(C.Block([stmt], stmt.line), depth + 1)

    def _process_loop(self, stmt: C.Stmt, depth: int) -> None:
        self._loop_counter += 1
        serial = self._loop_counter

        if isinstance(stmt, C.For):
            init, cond, body = stmt.init, stmt.cond, stmt.body
        elif isinstance(stmt, C.While):
            init, cond, body = None, stmt.cond, stmt.body
        else:  # DoWhile
            init, cond, body = None, stmt.cond, stmt.body

        # values of loop-carried variables before the loop
        init_env = self.env.copy()

        scalars, arrays = _assigned_names(stmt)

        # while the body runs, loop-carried values are opaque
        for name in scalars:
            self.env.scalars[name] = Term.sym(f"{name}@loop{serial}")
        for name in arrays:
            self.env.arrays[name] = Term.sym(f"{name}@loop{serial}")

        cond_term = (
            self._safe_expr_term(cond) if cond is not None else Term.sym(f"@loopcond{serial}")
        )

        # the init clause runs once before the body; process it so that any
        # declared induction variable is known inside the body
        if isinstance(init, C.Decl) and init.init is not None and _is_pure(init.init):
            self.env.scalars[init.name] = Term.sym(f"{init.name}@loop{serial}")
        elif isinstance(init, C.ExprStmt):
            pass  # the assigned variable is already opaque via scalars above

        self._process_branch(body, depth)

        # after the loop: loop-carried variables hold a loop φ
        for name in scalars:
            body_value = self.env.scalars.get(name, Term.sym(f"{name}@loop{serial}"))
            init_value = init_env.scalar(name)
            self.env.scalars[name] = self._make_phi(
                "phi-loop", name, cond_term, body_value, init_value
            )
        for name in arrays:
            body_value = self.env.arrays.get(name, Term.sym(f"{name}@loop{serial}"))
            init_value = init_env.array(name)
            self.env.arrays[name] = self._make_phi(
                "phi-loop", name, cond_term, body_value, init_value
            )

    def _make_phi(self, op: str, name: str, cond: Term, a: Term, b: Term) -> Term:
        self._phi_counter += 1
        payload = f"{name}@{op}{self._phi_counter}"
        term = Term(op, (cond, a, b), payload)
        self.phis[payload] = term
        return term

    def _invalidate_arrays(self) -> None:
        """Forget every array version (conservative barrier for calls)."""

        self._loop_counter += 1
        serial = self._loop_counter
        for name in list(self.env.arrays):
            self.env.arrays[name] = Term.sym(f"{name}@barrier{serial}")

    # ------------------------------------------------------------------
    # Assignments
    # ------------------------------------------------------------------

    def _try_assignment(
        self, stmt: C.Stmt, block: C.Block, index: int
    ) -> Optional[AssignmentInfo]:
        """Return an AssignmentInfo if *stmt* is a simple assignment."""

        try:
            return self._try_assignment_inner(stmt, index)
        except _UnsupportedExpression:
            return None

    def _try_assignment_inner(self, stmt: C.Stmt, index: int) -> Optional[AssignmentInfo]:
        if isinstance(stmt, C.Decl):
            if stmt.init is None or not _is_pure(stmt.init) or stmt.array_dims:
                return None
            term = self.expr_term(stmt.init)
            self.env.scalars[stmt.name] = term
            return self._record(stmt, index, stmt.name, [], term, False, True, stmt.name)

        if isinstance(stmt, C.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, C.Assign) and _is_pure(expr.value) and C.is_lvalue(expr.target):
                return self._assignment_from(expr, stmt, index)
            if (
                isinstance(expr, C.UnaryOp)
                and expr.op in ("++", "--")
                and isinstance(expr.operand, C.Ident)
            ):
                name = expr.operand.name
                delta = Term.num(1)
                op = "+" if expr.op == "++" else "-"
                term = Term(op, (self.env.scalar(name), delta))
                self.env.scalars[name] = term
                return self._record(stmt, index, name, [], term, False, False, name)
        return None

    def _assignment_from(
        self, assign: C.Assign, stmt: C.Stmt, index: int
    ) -> Optional[AssignmentInfo]:
        target = assign.target
        value_term = self.expr_term(assign.value)

        if isinstance(target, C.Ident) or (
            isinstance(target, C.Member) and isinstance(target.base, C.Ident)
        ):
            name = _scalar_name(target)
            if assign.op != "=":
                old = self.env.scalar(name)
                value_term = Term(assign.op[:-1], (old, value_term))
            self.env.scalars[name] = value_term
            return self._record(stmt, index, name, [], value_term, False, False, name)

        # array / pointer / member-of-element store
        try:
            template, base_name, index_terms = self._access_path(target)
        except _UnsupportedExpression:
            return None
        version = self.env.array(base_name)
        if assign.op != "=":
            old_load = Term("load", (version, *index_terms), template)
            value_term = Term(assign.op[:-1], (old_load, value_term))
        store = Term("store", (version, *index_terms, value_term), template)
        self.env.arrays[base_name] = store
        info = self._record(stmt, index, template, list(index_terms), value_term, True, False, None)
        info.store_term = store
        return info

    def _record(
        self,
        stmt: C.Stmt,
        index: int,
        template: str,
        indices: List[Term],
        term: Term,
        is_store: bool,
        is_decl: bool,
        var_name: Optional[str],
    ) -> AssignmentInfo:
        info = AssignmentInfo(
            stmt=stmt,
            stmt_index=index,
            lhs_template=template,
            lhs_indices=indices,
            term=term,
            ssa_id=self._ssa_counter,
            is_store=is_store,
            is_decl=is_decl,
            var_name=var_name,
        )
        self._ssa_counter += 1
        return info

    # ------------------------------------------------------------------
    # Expressions -> terms
    # ------------------------------------------------------------------

    def _safe_expr_term(self, expr: C.Expr) -> Term:
        """expr_term with a fallback opaque symbol for unsupported inputs."""

        try:
            return self.expr_term(expr)
        except _UnsupportedExpression:
            self._phi_counter += 1
            return Term.sym(f"@opaque{self._phi_counter}")

    def expr_term(self, expr: C.Expr) -> Term:
        """Convert a pure expression into its SSA term under the current env."""

        if isinstance(expr, C.Number):
            return Term.num(expr.value)
        if isinstance(expr, C.StringLit):
            return Term.sym(expr.value)
        if isinstance(expr, C.Ident):
            return self.env.scalar(expr.name)
        if isinstance(expr, C.Member) and isinstance(expr.base, C.Ident):
            return self.env.scalar(_scalar_name(expr))
        if isinstance(expr, (C.ArraySub, C.Member)) or (
            isinstance(expr, C.UnaryOp) and expr.op == "*" and not expr.postfix
        ):
            template, base_name, index_terms = self._access_path(expr)
            version = self.env.array(base_name)
            return Term("load", (version, *index_terms), template)
        if isinstance(expr, C.UnaryOp):
            operand = self.expr_term(expr.operand)
            if expr.op == "-":
                return Term("neg", (operand,))
            if expr.op == "+":
                return operand
            if expr.op == "!":
                return Term("!", (operand,))
            if expr.op == "~":
                return Term("~", (operand,))
            if expr.op == "&":
                return Term("addr", (operand,))
            raise _UnsupportedExpression(f"unary {expr.op}")
        if isinstance(expr, C.BinOp):
            if expr.op == ",":
                # comma: value of the right side (left side must be pure here)
                return self.expr_term(expr.rhs)
            return Term(expr.op, (self.expr_term(expr.lhs), self.expr_term(expr.rhs)))
        if isinstance(expr, C.Ternary):
            return Term(
                "ternary",
                (self.expr_term(expr.cond), self.expr_term(expr.then), self.expr_term(expr.otherwise)),
            )
        if isinstance(expr, C.Call):
            name = expr.func.name if isinstance(expr.func, C.Ident) else "<indirect>"
            return Term("call", tuple(self.expr_term(a) for a in expr.args), name)
        if isinstance(expr, C.Cast):
            return Term("cast", (self.expr_term(expr.operand),), expr.type_name)
        raise _UnsupportedExpression(type(expr).__name__)

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def _access_path(self, expr: C.Expr) -> Tuple[str, str, Tuple[Term, ...]]:
        """Return (printable template, base array name, index terms).

        The template contains ``{k}`` placeholders for the index terms, in
        order, e.g. ``lhsZ[{0}][{1}][{2}]`` or ``kValues[{0}].Kx``.
        """

        indices: List[Term] = []

        def visit(node: C.Expr) -> str:
            if isinstance(node, C.Ident):
                return node.name
            if isinstance(node, C.Member):
                sep = "->" if node.arrow else "."
                return f"{visit(node.base)}{sep}{node.field_name}"
            if isinstance(node, C.ArraySub):
                base = visit(node.base)
                placeholder = len(indices)
                indices.append(self.expr_term(node.index))
                return f"{base}[{{{placeholder}}}]"
            if isinstance(node, C.UnaryOp) and node.op == "*" and not node.postfix:
                return f"(*{visit(node.operand)})"
            raise _UnsupportedExpression(type(node).__name__)

        template = visit(expr)
        base_name = _base_name(expr)
        return template, base_name, tuple(indices)


class _UnsupportedExpression(Exception):
    """Internal marker for expressions outside the supported subset."""


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _scalar_name(expr: C.Expr) -> str:
    if isinstance(expr, C.Ident):
        return expr.name
    if isinstance(expr, C.Member) and isinstance(expr.base, C.Ident):
        sep = "->" if expr.arrow else "."
        return f"{expr.base.name}{sep}{expr.field_name}"
    raise _UnsupportedExpression(type(expr).__name__)


def _base_name(expr: C.Expr) -> str:
    """The leftmost identifier of an access path (array identity)."""

    node = expr
    while True:
        if isinstance(node, C.Ident):
            return node.name
        if isinstance(node, (C.ArraySub, C.Member)):
            node = node.base
            continue
        if isinstance(node, C.UnaryOp):
            node = node.operand
            continue
        raise _UnsupportedExpression(type(node).__name__)


def _is_pure(expr: C.Expr) -> bool:
    """True if evaluating *expr* has no side effects we track."""

    for node in C.walk(expr):
        if isinstance(node, C.Assign):
            return False
        if isinstance(node, C.UnaryOp) and node.op in ("++", "--"):
            return False
    return True


def _assigned_names(stmt: C.Stmt) -> Tuple[Set[str], Set[str]]:
    """Scalar and array names assigned anywhere inside *stmt*."""

    scalars: Set[str] = set()
    arrays: Set[str] = set()

    def note_target(target: C.Expr) -> None:
        if isinstance(target, C.Ident):
            scalars.add(target.name)
        elif isinstance(target, C.Member) and isinstance(target.base, C.Ident):
            try:
                scalars.add(_scalar_name(target))
            except _UnsupportedExpression:
                pass
        else:
            try:
                arrays.add(_base_name(target))
            except _UnsupportedExpression:
                pass

    for node in C.walk(stmt):
        if isinstance(node, C.Assign):
            note_target(node.target)
        elif isinstance(node, C.UnaryOp) and node.op in ("++", "--"):
            note_target(node.operand)
        elif isinstance(node, C.Decl):
            scalars.add(node.name)
    return scalars, arrays


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def build_ssa(body: C.Block) -> KernelSSA:
    """Build the SSA form of an innermost-parallel-loop body."""

    return SSABuilder().build(body)


def expression_to_term(expr: C.Expr) -> Term:
    """Convert a standalone pure expression to a term (empty environment)."""

    return SSABuilder().expr_term(expr)
