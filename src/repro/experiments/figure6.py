"""Figure 6 — SPEC ACCEL speedups on the A100-SXM4-80GB.

Identical to Figure 4 but with the higher-bandwidth SXM4-80GB GPU.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import figure4
from repro.experiments.common import EvaluationSettings
from repro.gpusim import A100_SXM4_80GB
from repro.gpusim.metrics import VariantComparison

__all__ = ["run", "summarize", "format_report"]


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> Dict[str, List[VariantComparison]]:
    return figure4.run(gpu=A100_SXM4_80GB, settings=settings, executor=executor)


summarize = figure4.summarize
format_report = figure4.format_report


if __name__ == "__main__":  # pragma: no cover
    print("Figure 6 — SPEC ACCEL speedups on A100-SXM4-80GB")
    print(format_report(run()))
