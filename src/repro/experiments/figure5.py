"""Figure 5 — NPB speedups on the A100-SXM4-80GB.

Identical to Figure 2 but with the higher-bandwidth SXM4-80GB GPU, which
shifts memory-bound kernels closer to the compute/latency limits and (as in
the paper) slightly increases BT's speedup.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import figure2
from repro.experiments.common import EvaluationSettings
from repro.gpusim import A100_SXM4_80GB
from repro.gpusim.metrics import VariantComparison

__all__ = ["run", "summarize", "format_report"]


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> Dict[str, List[VariantComparison]]:
    return figure2.run(gpu=A100_SXM4_80GB, settings=settings, executor=executor)


summarize = figure2.summarize
format_report = figure2.format_report


if __name__ == "__main__":  # pragma: no cover
    print("Figure 5 — NPB speedups on A100-SXM4-80GB")
    print(format_report(run()))
