"""Shared evaluation harness for the experiment modules.

The harness connects the three layers of the reproduction:

1. the **pipeline** (`repro.saturator`) runs on every benchmark kernel
   source and yields operation counts for the original code and for each
   generated variant,
2. the **compiler model** (`repro.gpusim.compilers`) lowers those counts to
   a machine-level characterisation per compiler,
3. the **GPU model** (`repro.gpusim.launch`) turns that into time.

Every figure/table cell re-runs the same parse→SSA→saturate→extract→codegen
flow, so the harness sits on the **session architecture**
(:mod:`repro.session`) rather than looping over the raw pipeline:

* pipeline runs go through a module-level
  :class:`~repro.session.OptimizationSession` whose content-addressed
  :class:`~repro.session.MemoryCache` is keyed on (source fingerprint,
  config fingerprint) — the SAT variants only differ from their non-SAT
  counterparts by equality saturation, and BULK only changes the code
  layout, so each kernel needs exactly two pipeline runs (CSE and CSE+SAT)
  and every other cell is a cache hit (counters:
  :func:`pipeline_cache_stats`);
* :func:`evaluate_kernel` and :func:`evaluate_benchmark` submit their
  independent units (variants, kernels) to a pluggable
  :class:`~repro.session.BatchExecutor` — serial by default, thread or
  process pools via ``executor=`` (the CLI's ``--jobs``).  Executors
  preserve input order, so parallel evaluation is output-identical to
  serial evaluation (enforced by ``tests/session``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.codegen.generator import KernelCodeStats
from repro.egraph.runner import RunnerLimits
from repro.gpusim import (
    GPUConfig,
    A100_PCIE_40GB,
    CompilerModel,
    KernelCharacterization,
    KernelMeasurement,
    LaunchConfig,
    VariantComparison,
    compile_kernel,
    compiler_model,
    simulate_kernel,
)
from repro.saturator import SaturatorConfig, Variant
from repro.session import (
    ArtifactCache,
    BatchExecutor,
    DiskCache,
    MemoryCache,
    OptimizationSession,
    TieredCache,
    make_executor,
)

__all__ = [
    "EvaluationSettings",
    "VARIANT_ORDER",
    "characterize_kernel",
    "clear_pipeline_cache",
    "configure_pipeline_cache",
    "evaluate_kernel",
    "evaluate_benchmark",
    "format_speedup_table",
    "pipeline_cache_stats",
    "pipeline_workload",
]

#: Display order of the paper's variants.
VARIANT_ORDER = ("cse", "cse+sat", "cse+bulk", "accsat")


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs of the evaluation harness (kept small for CI-speed runs)."""

    node_limit: int = 3000
    iter_limit: int = 4
    time_limit: float = 5.0
    extraction: str = "dag-greedy"
    #: Rule-scheduler spelling (``simple`` / ``backoff[:..]`` /
    #: ``match-budget[:..]``); the CLI's ``--scheduler``.
    scheduler: str = "simple"
    #: Anytime extraction with plateau-based early stopping; the CLI's
    #: ``--anytime``.
    anytime: bool = False
    plateau_patience: int = 3

    def config(self, variant: Variant) -> SaturatorConfig:
        return SaturatorConfig(
            variant=variant,
            limits=RunnerLimits(self.node_limit, self.iter_limit, self.time_limit),
            extraction=self.extraction,
            scheduler=self.scheduler,
            anytime_extraction=self.anytime,
            plateau_patience=self.plateau_patience,
        )


_DEFAULT_SETTINGS = EvaluationSettings()

def _default_pipeline_cache() -> ArtifactCache:
    """The harness's artifact cache backend.

    With ``REPRO_CACHE_DIR`` set, pipeline artifacts are shared through a
    disk-backed tier (memory in front for O(1) repeat hits), so repeated
    figure/table sweeps — and separate processes, e.g. the CI bench smoke
    or a process-pool fleet — skip cold pipeline runs entirely.  Without
    it, the in-memory backend serves the single-process case.  512 memory
    entries comfortably hold both configs of every kernel in both suites;
    the cache key covers the full SaturatorConfig, so different settings
    never collide.
    """

    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    memory = MemoryCache(max_entries=512)
    if cache_dir:
        return TieredCache(memory=memory, disk=DiskCache(cache_dir))
    return memory


#: Session cache shared by every experiment module in the process (see
#: :func:`_default_pipeline_cache`; reconfigure at runtime with
#: :func:`configure_pipeline_cache`).
_PIPELINE_CACHE: ArtifactCache = _default_pipeline_cache()
_SESSION = OptimizationSession(cache=_PIPELINE_CACHE)


def configure_pipeline_cache(
    cache_dir: Union[None, str, "os.PathLike"] = None,
    cache: Optional[ArtifactCache] = None,
) -> ArtifactCache:
    """Rebind the harness's shared pipeline cache.

    ``cache_dir`` wires a disk-backed tier at that path (the programmatic
    twin of the ``REPRO_CACHE_DIR`` environment variable); ``cache``
    installs an arbitrary pre-built backend; with neither, the default
    backend is rebuilt from the environment.  Derived-stat memos are
    dropped so every figure/table cell re-reads through the new backend.
    Returns the installed cache.
    """

    global _PIPELINE_CACHE, _SESSION
    if cache is not None and cache_dir is not None:
        raise ValueError("pass either cache_dir or cache, not both")
    if cache is None:
        if cache_dir is not None:
            cache = TieredCache(
                memory=MemoryCache(max_entries=512),
                disk=DiskCache(os.fspath(cache_dir)),
            )
        else:
            cache = _default_pipeline_cache()
    _PIPELINE_CACHE = cache
    _SESSION = OptimizationSession(cache=_PIPELINE_CACHE)
    _pipeline_stats.cache_clear()
    return cache


def pipeline_cache_stats() -> Dict[str, object]:
    """Counters of both pipeline cache layers.

    ``hits``/``misses``/``stores`` are the session artifact cache;
    ``derived_hits``/``derived_misses`` are the O(1) memo of the derived
    stat tuples sitting in front of it.
    """

    stats = _PIPELINE_CACHE.stats.as_dict()
    info = _pipeline_stats.cache_info()
    stats["derived_hits"] = info.hits
    stats["derived_misses"] = info.misses
    return stats


def clear_pipeline_cache() -> None:
    """Drop every cached pipeline artifact (for benchmarks and tests)."""

    _pipeline_stats.cache_clear()
    _PIPELINE_CACHE.clear()


@lru_cache(maxsize=1024)
def _pipeline_stats(
    source: str, saturate: bool, settings: EvaluationSettings
) -> Tuple[KernelCodeStats, KernelCodeStats, int]:
    """Run the pipeline once per (source, config); cached thereafter.

    Two cache layers: this ``lru_cache`` serves the *derived* stat tuple
    in O(1) for the repeated figure/table cells of one process, while the
    session's content-addressed artifact cache underneath holds the full
    :class:`OptimizationResult` (shared across call signatures, and the
    layer a future disk backend plugs into).
    """

    variant = Variant.CSE_SAT if saturate else Variant.CSE
    result = _SESSION.run(source, settings.config(variant))
    original = KernelCodeStats()
    generated = KernelCodeStats()
    temps = 0
    for kernel in result.kernels:
        for field_name in ("loads", "stores", "flops", "fmas", "divs", "calls", "int_ops"):
            setattr(original, field_name,
                    getattr(original, field_name) + getattr(kernel.original, field_name))
            setattr(generated, field_name,
                    getattr(generated, field_name) + getattr(kernel.optimized, field_name))
        temps += kernel.optimized.temporaries
    generated.temporaries = temps
    return original, generated, temps


def pipeline_workload(
    benchmarks: Optional[Sequence[BenchmarkSpec]] = None,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
) -> Sequence[Tuple[str, SaturatorConfig, str]]:
    """The distinct pipeline runs behind a figure/table sweep.

    Every figure and table cell of the evaluation reduces to exactly two
    pipeline runs per kernel — the CSE baseline and the CSE+SAT saturated
    build (see :func:`_pipeline_stats`); all other variants and compilers
    are cache hits over those artifacts.  This returns that deduplicated
    ``(source, config, kernel name)`` workload, which is what the executor
    scaling benchmark times and the service load generator samples its
    request mix from.  ``benchmarks`` defaults to both suites (NPB and
    SPEC ACCEL).
    """

    if benchmarks is None:
        from repro.benchsuite.registry import NPB_BENCHMARKS, SPEC_ACC_BENCHMARKS

        benchmarks = list(NPB_BENCHMARKS) + list(SPEC_ACC_BENCHMARKS)
    workload = []
    seen = set()
    for bench in benchmarks:
        for spec in bench.kernels:
            if spec.source in seen:
                continue
            seen.add(spec.source)
            for variant in (Variant.CSE, Variant.CSE_SAT):
                workload.append(
                    (spec.source, settings.config(variant),
                     f"{bench.name}_{spec.name}")
                )
    return workload


def characterize_kernel(
    spec: KernelSpec,
    variant: str,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
) -> KernelCharacterization:
    """Build the GPU-model characterisation of one kernel variant.

    ``variant`` is ``"original"`` or one of :data:`VARIANT_ORDER`.
    """

    saturate = variant in ("cse+sat", "accsat")
    bulk = variant in ("cse+bulk", "accsat")
    uses_kernels = "acc kernels" in spec.source
    original, generated, temps = _pipeline_stats(spec.source, saturate, settings)
    if variant == "original":
        # the irreducible loads/ops reference is the plain CSE build
        _, cse_generated, _ = _pipeline_stats(spec.source, False, settings)
        return KernelCharacterization(
            name=spec.name,
            original=original,
            generated=cse_generated,
            bulk_load=False,
            is_original=True,
            live_temporaries=0,
            scale=spec.statement_scale,
            uses_kernels_directive=uses_kernels,
        )
    return KernelCharacterization(
        name=spec.name,
        original=original,
        generated=generated,
        bulk_load=bulk,
        is_original=False,
        live_temporaries=temps,
        scale=spec.statement_scale,
        uses_kernels_directive=uses_kernels,
    )


def _variant_task(args: Tuple) -> object:
    """Model one kernel variant (module-level so process pools can map it)."""

    spec, variant, compiler, gpu, launch, settings = args
    characterization = characterize_kernel(spec, variant, settings)
    compiled = compile_kernel(characterization, compiler, gpu)
    return simulate_kernel(compiled, gpu, launch)


def evaluate_kernel(
    spec: KernelSpec,
    compiler: CompilerModel,
    gpu: GPUConfig = A100_PCIE_40GB,
    variants: Sequence[str] = ("original",) + VARIANT_ORDER,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
    executor: Union[None, int, str, BatchExecutor] = None,
) -> KernelMeasurement:
    """Model the performance of one kernel under every requested variant.

    ``executor`` runs the independent variant evaluations through a batch
    executor (serial by default); results are assembled in variant order
    either way.
    """

    launch = LaunchConfig(
        iterations_per_launch=spec.iterations_per_launch,
        launches=spec.launches,
        threads_per_block=spec.threads_per_block,
        parallel_fraction=spec.parallel_fraction,
    )
    measurement = KernelMeasurement(kernel=spec.name)
    results = make_executor(executor).map(
        _variant_task,
        [(spec, variant, compiler, gpu, launch, settings) for variant in variants],
    )
    for variant, simulated in zip(variants, results):
        measurement.by_variant[variant] = simulated
    return measurement


def _kernel_task(args: Tuple) -> KernelMeasurement:
    """Evaluate one kernel spec (module-level so process pools can map it).

    The compiler model is rebuilt from its name inside the worker, so the
    task tuple stays cheap to pickle and process workers never depend on
    the parent's object graph.
    """

    spec, compiler_name, programming_model, gpu, variants, settings = args
    compiler = compiler_model(compiler_name, programming_model)
    return evaluate_kernel(spec, compiler, gpu, variants, settings)


def evaluate_benchmark(
    bench: BenchmarkSpec,
    compiler_name: str,
    gpu: GPUConfig = A100_PCIE_40GB,
    variants: Sequence[str] = ("original",) + VARIANT_ORDER,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
    executor: Union[None, int, str, BatchExecutor] = None,
) -> VariantComparison:
    """Model a whole benchmark: per-kernel times aggregated by repeat count.

    The per-kernel sessions are independent; ``executor`` submits them to
    a batch executor (``"threads:8"``, ``ProcessExecutor()``, a plain job
    count, ...).  Aggregation runs over the order-preserved results, so
    the comparison is identical to a serial evaluation.
    """

    comparison = VariantComparison(
        benchmark=bench.name,
        compiler=compiler_name,
        gpu=gpu.name,
        total_time={variant: 0.0 for variant in variants},
    )
    measurements = make_executor(executor).map(
        _kernel_task,
        [
            (spec, compiler_name, bench.programming_model, gpu, tuple(variants), settings)
            for spec in bench.kernels
        ],
    )
    for spec, measurement in zip(bench.kernels, measurements):
        comparison.kernels.append(measurement)
        for variant in variants:
            comparison.total_time[variant] += measurement.by_variant[variant].time_s * spec.repeat
    return comparison


def format_speedup_table(
    comparisons: Iterable[VariantComparison],
    variants: Sequence[str] = VARIANT_ORDER,
    baseline: str = "original",
) -> str:
    """Render benchmark speedups as an aligned text table (one row each)."""

    comparisons = list(comparisons)
    header = ["benchmark"] + list(variants)
    rows = [header]
    for comparison in comparisons:
        row = [comparison.benchmark]
        for variant in variants:
            row.append(f"{comparison.speedup(variant, baseline):.2f}x")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
