"""Shared evaluation harness for the experiment modules.

The harness connects the three layers of the reproduction:

1. the **pipeline** (`repro.saturator`) runs on every benchmark kernel
   source and yields operation counts for the original code and for each
   generated variant,
2. the **compiler model** (`repro.gpusim.compilers`) lowers those counts to
   a machine-level characterisation per compiler,
3. the **GPU model** (`repro.gpusim.launch`) turns that into time.

Because the SAT variants only differ from their non-SAT counterparts by
equality saturation, and BULK only changes the code layout (not the
operation counts), each kernel needs exactly two pipeline runs (CSE and
CSE+SAT); results are cached per kernel source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.codegen.generator import KernelCodeStats
from repro.egraph.runner import RunnerLimits
from repro.gpusim import (
    GPUConfig,
    A100_PCIE_40GB,
    CompilerModel,
    KernelCharacterization,
    KernelMeasurement,
    LaunchConfig,
    VariantComparison,
    compile_kernel,
    compiler_model,
    simulate_kernel,
)
from repro.saturator import SaturatorConfig, Variant, optimize_source

__all__ = [
    "EvaluationSettings",
    "VARIANT_ORDER",
    "characterize_kernel",
    "evaluate_kernel",
    "evaluate_benchmark",
    "format_speedup_table",
]

#: Display order of the paper's variants.
VARIANT_ORDER = ("cse", "cse+sat", "cse+bulk", "accsat")


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs of the evaluation harness (kept small for CI-speed runs)."""

    node_limit: int = 3000
    iter_limit: int = 4
    time_limit: float = 5.0
    extraction: str = "dag-greedy"

    def config(self, variant: Variant) -> SaturatorConfig:
        return SaturatorConfig(
            variant=variant,
            limits=RunnerLimits(self.node_limit, self.iter_limit, self.time_limit),
            extraction=self.extraction,
        )


_DEFAULT_SETTINGS = EvaluationSettings()


@lru_cache(maxsize=512)
def _pipeline_stats(
    source: str, saturate: bool, settings: EvaluationSettings
) -> Tuple[KernelCodeStats, KernelCodeStats, int]:
    """Run the pipeline once; returns (original, generated, temporaries)."""

    variant = Variant.CSE_SAT if saturate else Variant.CSE
    result = optimize_source(source, settings.config(variant))
    original = KernelCodeStats()
    generated = KernelCodeStats()
    temps = 0
    for kernel in result.kernels:
        for field_name in ("loads", "stores", "flops", "fmas", "divs", "calls", "int_ops"):
            setattr(original, field_name,
                    getattr(original, field_name) + getattr(kernel.original, field_name))
            setattr(generated, field_name,
                    getattr(generated, field_name) + getattr(kernel.optimized, field_name))
        temps += kernel.optimized.temporaries
    generated.temporaries = temps
    return original, generated, temps


def characterize_kernel(
    spec: KernelSpec,
    variant: str,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
) -> KernelCharacterization:
    """Build the GPU-model characterisation of one kernel variant.

    ``variant`` is ``"original"`` or one of :data:`VARIANT_ORDER`.
    """

    saturate = variant in ("cse+sat", "accsat")
    bulk = variant in ("cse+bulk", "accsat")
    uses_kernels = "acc kernels" in spec.source
    original, generated, temps = _pipeline_stats(spec.source, saturate, settings)
    if variant == "original":
        # the irreducible loads/ops reference is the plain CSE build
        _, cse_generated, _ = _pipeline_stats(spec.source, False, settings)
        return KernelCharacterization(
            name=spec.name,
            original=original,
            generated=cse_generated,
            bulk_load=False,
            is_original=True,
            live_temporaries=0,
            scale=spec.statement_scale,
            uses_kernels_directive=uses_kernels,
        )
    return KernelCharacterization(
        name=spec.name,
        original=original,
        generated=generated,
        bulk_load=bulk,
        is_original=False,
        live_temporaries=temps,
        scale=spec.statement_scale,
        uses_kernels_directive=uses_kernels,
    )


def evaluate_kernel(
    spec: KernelSpec,
    compiler: CompilerModel,
    gpu: GPUConfig = A100_PCIE_40GB,
    variants: Sequence[str] = ("original",) + VARIANT_ORDER,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
) -> KernelMeasurement:
    """Model the performance of one kernel under every requested variant."""

    launch = LaunchConfig(
        iterations_per_launch=spec.iterations_per_launch,
        launches=spec.launches,
        threads_per_block=spec.threads_per_block,
        parallel_fraction=spec.parallel_fraction,
    )
    measurement = KernelMeasurement(kernel=spec.name)
    for variant in variants:
        characterization = characterize_kernel(spec, variant, settings)
        compiled = compile_kernel(characterization, compiler, gpu)
        measurement.by_variant[variant] = simulate_kernel(compiled, gpu, launch)
    return measurement


def evaluate_benchmark(
    bench: BenchmarkSpec,
    compiler_name: str,
    gpu: GPUConfig = A100_PCIE_40GB,
    variants: Sequence[str] = ("original",) + VARIANT_ORDER,
    settings: EvaluationSettings = _DEFAULT_SETTINGS,
) -> VariantComparison:
    """Model a whole benchmark: per-kernel times aggregated by repeat count."""

    compiler = compiler_model(compiler_name, bench.programming_model)
    comparison = VariantComparison(
        benchmark=bench.name,
        compiler=compiler_name,
        gpu=gpu.name,
        total_time={variant: 0.0 for variant in variants},
    )
    for spec in bench.kernels:
        measurement = evaluate_kernel(spec, compiler, gpu, variants, settings)
        comparison.kernels.append(measurement)
        for variant in variants:
            comparison.total_time[variant] += measurement.by_variant[variant].time_s * spec.repeat
    return comparison


def format_speedup_table(
    comparisons: Iterable[VariantComparison],
    variants: Sequence[str] = VARIANT_ORDER,
    baseline: str = "original",
) -> str:
    """Render benchmark speedups as an aligned text table (one row each)."""

    comparisons = list(comparisons)
    header = ["benchmark"] + list(variants)
    rows = [header]
    for comparison in comparisons:
        row = [comparison.benchmark]
        for variant in variants:
            row.append(f"{comparison.speedup(variant, baseline):.2f}x")
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
