"""Table II — NPB benchmark description and original execution times.

Columns: benchmark, compute pattern, access pattern, number of kernels,
and the original (unoptimized) execution time under NVHPC and GCC.  The
"paper" columns are the values reported in the paper; the "model" columns
are what the GPU model predicts for the same configuration.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite import NPB_BENCHMARKS
from repro.experiments.common import EvaluationSettings, evaluate_benchmark
from repro.gpusim import A100_PCIE_40GB

__all__ = ["run", "format_table"]


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> List[Dict[str, object]]:
    """Return one row per NPB benchmark."""

    rows: List[Dict[str, object]] = []
    for bench in NPB_BENCHMARKS:
        row: Dict[str, object] = {
            "name": bench.name,
            "compute": bench.compute,
            "access": bench.access,
            "num_kernels": bench.num_kernels,
            "class": bench.problem_class,
        }
        for compiler in ("nvhpc", "gcc"):
            comparison = evaluate_benchmark(
                bench, compiler, A100_PCIE_40GB, ("original",), settings,
                executor=executor,
            )
            row[f"model_time_{compiler}"] = comparison.total_time["original"]
            row[f"paper_time_{compiler}"] = bench.paper_original_time.get(compiler)
        rows.append(row)
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    header = (
        f"{'Name':<5} {'Compute':<12} {'Access':<14} {'Kernels':>7} "
        f"{'NVHPC(model)':>13} {'NVHPC(paper)':>13} {'GCC(model)':>11} {'GCC(paper)':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<5} {row['compute']:<12} {row['access']:<14} "
            f"{row['num_kernels']:>7} "
            f"{row['model_time_nvhpc']:>12.2f}s {row['paper_time_nvhpc']:>12.2f}s "
            f"{row['model_time_gcc']:>10.2f}s {row['paper_time_gcc']:>10.2f}s"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print("Table II — NPB benchmarks (original execution time)")
    print(format_table(run()))
