"""Table III — SPEC ACCEL benchmark description and original times.

OpenACC originals under NVHPC and GCC; OpenMP originals under NVHPC, GCC
and Clang.  Paper values are included for comparison.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite import SPEC_ACC_BENCHMARKS, SPEC_OMP_BENCHMARKS
from repro.experiments.common import EvaluationSettings, evaluate_benchmark
from repro.gpusim import A100_PCIE_40GB

__all__ = ["run", "format_table"]

_ACC_COMPILERS = ("nvhpc", "gcc")
_OMP_COMPILERS = ("nvhpc", "gcc", "clang")


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> List[Dict[str, object]]:
    """One row per SPEC ACCEL benchmark (OpenACC + matching OpenMP times)."""

    rows: List[Dict[str, object]] = []
    for acc_bench, omp_bench in zip(SPEC_ACC_BENCHMARKS, SPEC_OMP_BENCHMARKS):
        row: Dict[str, object] = {
            "name": acc_bench.name,
            "compute": acc_bench.compute,
            "access": acc_bench.access,
            "num_kernels": acc_bench.num_kernels,
            "size": acc_bench.problem_class,
        }
        for compiler in _ACC_COMPILERS:
            comparison = evaluate_benchmark(
                acc_bench, compiler, A100_PCIE_40GB, ("original",), settings,
                executor=executor,
            )
            row[f"acc_model_{compiler}"] = comparison.total_time["original"]
            row[f"acc_paper_{compiler}"] = acc_bench.paper_original_time.get(compiler)
        for compiler in _OMP_COMPILERS:
            comparison = evaluate_benchmark(
                omp_bench, compiler, A100_PCIE_40GB, ("original",), settings,
                executor=executor,
            )
            row[f"omp_model_{compiler}"] = comparison.total_time["original"]
            row[f"omp_paper_{compiler}"] = omp_bench.paper_original_time.get(compiler)
        rows.append(row)
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    lines = [
        f"{'Name':<9} {'Kernels':>7} "
        f"{'ACC nvhpc':>10} {'ACC gcc':>10} {'OMP nvhpc':>10} {'OMP gcc':>10} {'OMP clang':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['name']:<9} {row['num_kernels']:>7} "
            f"{row['acc_model_nvhpc']:>9.2f}s {row['acc_model_gcc']:>9.2f}s "
            f"{row['omp_model_nvhpc']:>9.2f}s {row['omp_model_gcc']:>9.2f}s "
            f"{row['omp_model_clang']:>9.2f}s"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print("Table III — SPEC ACCEL benchmarks (modelled original execution time)")
    print(format_table(run()))
