"""Table IV — per-kernel breakdown of NPB-BT.

For every BT kernel and every variant (original, CSE, CSE+SAT, CSE+BULK,
ACCSAT) under NVHPC and GCC: time per launch, executed instructions,
memory utilisation, registers per thread and SM occupancy — the five
columns of the paper's Table IV.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.npb.bt import BT
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    evaluate_kernel,
)
from repro.gpusim import A100_PCIE_40GB, compiler_model

__all__ = ["run", "format_table"]

_VARIANTS = ("original",) + VARIANT_ORDER


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> List[Dict[str, object]]:
    """One row per (compiler, BT kernel, variant)."""

    rows: List[Dict[str, object]] = []
    for compiler_name in ("nvhpc", "gcc"):
        compiler = compiler_model(compiler_name, BT.programming_model)
        for spec in BT.kernels:
            measurement = evaluate_kernel(spec, compiler, A100_PCIE_40GB,
                                          _VARIANTS, settings, executor=executor)
            for variant in _VARIANTS:
                perf = measurement.by_variant[variant]
                rows.append(
                    {
                        "compiler": compiler_name,
                        "kernel": spec.name,
                        "variant": variant,
                        "time_per_launch_ms": perf.time_per_launch_ms,
                        "instructions_M": perf.instructions_per_launch / 1e6,
                        "memory_utilization": perf.memory_utilization,
                        "registers": perf.registers,
                        "occupancy": perf.occupancy,
                        "speedup": measurement.speedup(variant) if variant != "original" else 1.0,
                    }
                )
    return rows


def format_table(rows: List[Dict[str, object]]) -> str:
    lines = [
        f"{'compiler':<8} {'kernel':<16} {'variant':<9} {'ms/launch':>10} "
        f"{'Minstr':>9} {'mem%':>6} {'regs':>5} {'occ':>5} {'speedup':>8}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['compiler']:<8} {row['kernel']:<16} {row['variant']:<9} "
            f"{row['time_per_launch_ms']:>10.3f} {row['instructions_M']:>9.1f} "
            f"{row['memory_utilization'] * 100:>5.1f}% {row['registers']:>5d} "
            f"{row['occupancy']:>5.2f} {row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print("Table IV — NPB-BT kernel breakdown")
    print(format_table(run()))
