"""Figure 2 — NPB speedups on the A100-PCIE-40GB (NVHPC and GCC).

For every NPB benchmark and each generated-code variant (CSE, CSE+BULK,
CSE+SAT, ACCSAT) the harness reports the modelled speedup over the
original code, mirroring the four bar groups of the paper's Figure 2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.benchsuite import NPB_BENCHMARKS
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    evaluate_benchmark,
    format_speedup_table,
)
from repro.gpusim import A100_PCIE_40GB, GPUConfig
from repro.gpusim.metrics import VariantComparison, geomean

__all__ = ["run", "summarize", "format_report"]

COMPILERS: Sequence[str] = ("nvhpc", "gcc")


def run(
    gpu: GPUConfig = A100_PCIE_40GB,
    settings: EvaluationSettings = EvaluationSettings(),
    benchmarks=NPB_BENCHMARKS,
    compilers: Sequence[str] = COMPILERS,
    executor=None,
) -> Dict[str, List[VariantComparison]]:
    """Evaluate every benchmark under every compiler; keyed by compiler.

    ``executor`` (e.g. ``"threads:8"``) parallelises the per-kernel
    sessions inside each benchmark; results are order-identical to serial.
    """

    results: Dict[str, List[VariantComparison]] = {}
    for compiler in compilers:
        results[compiler] = [
            evaluate_benchmark(bench, compiler, gpu, settings=settings,
                               executor=executor)
            for bench in benchmarks
        ]
    return results


def summarize(results: Dict[str, List[VariantComparison]]) -> Dict[str, Dict[str, float]]:
    """Geometric-mean speedup per compiler per variant (the paper's averages)."""

    summary: Dict[str, Dict[str, float]] = {}
    for compiler, comparisons in results.items():
        summary[compiler] = {
            variant: geomean(c.speedup(variant) for c in comparisons)
            for variant in VARIANT_ORDER
        }
    return summary


def format_report(results: Dict[str, List[VariantComparison]]) -> str:
    parts = []
    summary = summarize(results)
    for compiler, comparisons in results.items():
        parts.append(f"== {compiler.upper()} ==")
        parts.append(format_speedup_table(comparisons))
        means = ", ".join(f"{v}: {s:.2f}x" for v, s in summary[compiler].items())
        parts.append(f"geomean: {means}")
        parts.append("")
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print("Figure 2 — NPB speedups on A100-PCIE-40GB")
    print(format_report(run()))
