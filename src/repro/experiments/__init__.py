"""Experiment harness: one module per paper table/figure.

Every module is runnable (``python -m repro.experiments.figure2``) and
exposes a ``run()`` function returning the structured data the paper
reports, so the pytest-benchmark harness under ``benchmarks/`` and the
EXPERIMENTS.md generator can share them.
"""

from repro.experiments.common import (
    EvaluationSettings,
    characterize_kernel,
    evaluate_benchmark,
    evaluate_kernel,
)

__all__ = [
    "EvaluationSettings",
    "characterize_kernel",
    "evaluate_benchmark",
    "evaluate_kernel",
]
