"""Figure 3 — per-kernel speedup distribution of NPB-BT.

The paper's Figure 3 plots, for each BT kernel, the speedup of every
variant together with the kernel's share of the total execution time.
This harness reports the same data as a list of rows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.npb.bt import BT
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    evaluate_kernel,
)
from repro.gpusim import A100_PCIE_40GB, compiler_model

__all__ = ["run", "format_report"]


def run(
    settings: EvaluationSettings = EvaluationSettings(), executor=None
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for compiler_name in ("nvhpc", "gcc"):
        compiler = compiler_model(compiler_name, BT.programming_model)
        measurements = [
            (spec, evaluate_kernel(spec, compiler, A100_PCIE_40GB,
                                   settings=settings, executor=executor))
            for spec in BT.kernels
        ]
        total = sum(m.by_variant["original"].time_s * s.repeat for s, m in measurements)
        for spec, measurement in measurements:
            share = measurement.by_variant["original"].time_s * spec.repeat / total
            row: Dict[str, object] = {
                "compiler": compiler_name,
                "kernel": spec.name,
                "time_share": share,
            }
            for variant in VARIANT_ORDER:
                row[f"speedup_{variant}"] = measurement.speedup(variant)
            rows.append(row)
    return rows


def format_report(rows: List[Dict[str, object]]) -> str:
    lines = [
        f"{'compiler':<8} {'kernel':<16} {'share':>6} "
        + " ".join(f"{v:>9}" for v in VARIANT_ORDER)
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append(
            f"{row['compiler']:<8} {row['kernel']:<16} {row['time_share'] * 100:>5.1f}% "
            + " ".join(f"{row[f'speedup_{v}']:>8.2f}x" for v in VARIANT_ORDER)
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print("Figure 3 — NPB-BT per-kernel speedups")
    print(format_report(run()))
