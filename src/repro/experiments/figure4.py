"""Figure 4 — SPEC ACCEL speedups on the A100-PCIE-40GB.

OpenACC benchmarks under NVHPC and GCC, OpenMP benchmarks (``p`` names)
under NVHPC, GCC and Clang, for all four generated-code variants.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.benchsuite import SPEC_ACC_BENCHMARKS, SPEC_OMP_BENCHMARKS
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    evaluate_benchmark,
    format_speedup_table,
)
from repro.gpusim import A100_PCIE_40GB, GPUConfig
from repro.gpusim.metrics import VariantComparison, geomean

__all__ = ["run", "summarize", "format_report"]

ACC_COMPILERS: Sequence[str] = ("nvhpc", "gcc")
OMP_COMPILERS: Sequence[str] = ("nvhpc", "gcc", "clang")


def run(
    gpu: GPUConfig = A100_PCIE_40GB,
    settings: EvaluationSettings = EvaluationSettings(),
    executor=None,
) -> Dict[str, List[VariantComparison]]:
    """Keyed by "<compiler>/acc" or "<compiler>/omp"."""

    results: Dict[str, List[VariantComparison]] = {}
    for compiler in ACC_COMPILERS:
        results[f"{compiler}/acc"] = [
            evaluate_benchmark(bench, compiler, gpu, settings=settings,
                               executor=executor)
            for bench in SPEC_ACC_BENCHMARKS
        ]
    for compiler in OMP_COMPILERS:
        results[f"{compiler}/omp"] = [
            evaluate_benchmark(bench, compiler, gpu, settings=settings,
                               executor=executor)
            for bench in SPEC_OMP_BENCHMARKS
        ]
    return results


def summarize(results: Dict[str, List[VariantComparison]]) -> Dict[str, Dict[str, float]]:
    return {
        key: {
            variant: geomean(c.speedup(variant) for c in comparisons)
            for variant in VARIANT_ORDER
        }
        for key, comparisons in results.items()
    }


def format_report(results: Dict[str, List[VariantComparison]]) -> str:
    parts = []
    summary = summarize(results)
    for key, comparisons in results.items():
        parts.append(f"== {key} ==")
        parts.append(format_speedup_table(comparisons))
        means = ", ".join(f"{v}: {s:.2f}x" for v, s in summary[key].items())
        parts.append(f"geomean: {means}")
        parts.append("")
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print("Figure 4 — SPEC ACCEL speedups on A100-PCIE-40GB")
    print(format_report(run()))
