"""Table I — ACC Saturator's rewriting rules.

Prints the rule table verbatim and checks that the implemented rule set
matches it one-for-one.
"""

from __future__ import annotations

from typing import List

from repro.rules import RULE_TABLE, default_ruleset
from repro.rules.rulesets import RuleSpec

__all__ = ["run", "format_table"]


def run() -> List[RuleSpec]:
    """Return the rule table after verifying it matches the implementation."""

    implemented = {rule.name.replace("-", "").lower() for rule in default_ruleset()}
    for spec in RULE_TABLE:
        key = spec.name.replace("-", "").replace("1", "1").lower()
        # FMA1 -> fma1, COMM-ADD -> commadd, ASSOC-ADD1 -> assocadd1
        if key not in implemented:
            raise AssertionError(f"rule {spec.name} missing from the default rule set")
    return list(RULE_TABLE)


def format_table(rows: List[RuleSpec]) -> str:
    lines = [f"{'Name':<12} {'Pattern':<16} {'Result':<18}", "-" * 46]
    for spec in rows:
        lines.append(f"{spec.name:<12} {spec.pattern:<16} {spec.result:<18}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print("Table I — rewriting rules")
    print(format_table(run()))
