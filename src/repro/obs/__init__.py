"""repro.obs — the unified telemetry layer (PR 10).

Structured tracing (:mod:`repro.obs.trace`), the metrics registry
(:mod:`repro.obs.metrics`), trace exporters (:mod:`repro.obs.export`),
trace validation (:mod:`repro.obs.check`) and the instrumentation-site
registry shared with fault injection (:mod:`repro.obs.sites`).

The layer is strictly observational: instrumented code threads an
``Optional[Tracer]`` defaulting to ``None``, never fingerprints it, and
guards every instrumentation point with ``if tracer is not None`` — so
traced and untraced runs produce byte-identical artifacts and the
disabled path has near-zero overhead.
"""

from repro.obs.check import (
    validate_chrome_file,
    validate_trace_file,
    validate_trace_records,
)
from repro.obs.export import (
    SCHEMA,
    chrome_path_for,
    load_jsonl,
    render_summary,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace_files,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, sorted_deep
from repro.obs.sites import all_sites, check_site, is_known_site, register_site
from repro.obs.trace import Span, Tracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "all_sites",
    "check_site",
    "chrome_path_for",
    "is_known_site",
    "load_jsonl",
    "register_site",
    "render_summary",
    "sorted_deep",
    "to_chrome_trace",
    "validate_chrome_file",
    "validate_trace_file",
    "validate_trace_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace_files",
]
