"""The instrumentation-site registry: one table for faults *and* telemetry.

Before this module existed, the :class:`~repro.service.FaultPlan` hook
sites (``cache:get``, ``stage:<name>``, ``worker:pickup``, …) and the
tracer's instrumentation points were defined independently — a new hook
site added for fault injection was invisible to telemetry until someone
remembered to mirror it, and vice versa.  This registry is the single
source of truth both layers consult:

* ``FaultPlan`` validates every :class:`FaultRule`'s site against it at
  construction, so a typo'd or undeclared site fails fast instead of
  silently never firing;
* the tracer names its cache/stage/worker events by the *same* site
  strings, and every fault verdict is reported through
  ``FaultPlan.on_inject`` as a trace event carrying the site name — an
  injected fault is automatically visible in the trace without any
  per-site wiring.

Sites are plain strings.  A site may be registered exact
(``"cache:get"``) or as a prefix family (``"stage:"`` covers
``stage:frontend``, ``stage:saturate``, …).  Tests and experiments may
register ad-hoc sites with :func:`register_site`; registration is
idempotent.
"""

from __future__ import annotations

import threading

_lock = threading.Lock()
_EXACT: dict = {}
_PREFIXES: dict = {}


def register_site(name: str, description: str = "", *, prefix: bool = False) -> str:
    """Register an instrumentation site (idempotent).  Returns *name*."""

    if not name:
        raise ValueError("instrumentation site name must be non-empty")
    with _lock:
        if prefix:
            _PREFIXES[name] = description
        else:
            _EXACT[name] = description
    return name


def is_known_site(site: str) -> bool:
    """True when *site* matches a registered exact name or prefix family."""

    with _lock:
        if site in _EXACT:
            return True
        return any(site.startswith(prefix) for prefix in _PREFIXES)


def check_site(site: str) -> str:
    """Validate *site* against the registry; raise ``ValueError`` if unknown."""

    if not is_known_site(site):
        raise ValueError(
            f"unknown instrumentation site {site!r}; known sites: "
            f"{', '.join(all_sites())} (register new ones via "
            "repro.obs.sites.register_site)"
        )
    return site


def all_sites() -> list:
    """Deterministically ordered list of registered sites (prefixes end with ':')."""

    with _lock:
        return sorted(_EXACT) + sorted(_PREFIXES)


# ---------------------------------------------------------------------------
# The built-in sites.  Fault-injection hooks and telemetry events share
# these names — that is the whole point of the registry.
# ---------------------------------------------------------------------------

#: Session/tiered cache probe (fired per backend lookup; telemetry emits
#: the probe outcome — hit / miss / corrupt — as an event attribute).
SITE_CACHE_GET = register_site("cache:get", "artifact cache lookup")
#: Session/tiered cache store.
SITE_CACHE_STORE = register_site("cache:store", "artifact cache store")
#: Pipeline stage entry; one site per stage name (``stage:frontend``,
#: ``stage:saturate``, …) — the tracer's stage spans use the same names.
SITE_STAGE = register_site("stage:", "pipeline stage entry", prefix=True)
#: Service worker picking a job off the queue.
SITE_WORKER_PICKUP = register_site("worker:pickup", "service worker job pickup")
#: Hard worker-process death at an iteration boundary (process executor).
SITE_WORKER_CRASH = register_site("worker:crash", "worker process hard-kill")
#: Per-iteration progress publication on the job's event stream.
SITE_PROGRESS_PUBLISH = register_site("progress:publish", "job progress publication")
#: Finished result dropped on the IPC channel (process executor).
SITE_IPC_RESULT_DROP = register_site("ipc:result-drop", "IPC result drop")
