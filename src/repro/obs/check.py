"""Trace well-formedness validation (shared by tests and ``check_trace.py``).

A record stream is well-formed when:

* ``seq`` is strictly monotone over the whole stream;
* every ``start`` has a unique id and **exactly one** matching ``end``
  (no dangling opens, no double-ends), with ``end.ts >= start.ts``;
* every non-root span's parent exists and started before it, and the
  child's interval nests inside the parent's (small float tolerance);
* every event's ``span`` reference (when present) names a started span;
* every ``job`` span's end carries exactly one terminal state
  (``done`` / ``failed`` / ``cancelled``) — the service's conservation
  law, visible in the trace.

Validators return a list of human-readable failure strings (empty =
valid) rather than raising, so callers can aggregate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Tolerance for nesting checks: timestamps come from ``perf_counter``
#: and cross-process ingestion aligns a worker's root span exactly to
#: its attempt span's start, so equality-up-to-float-noise must pass.
_EPS = 1e-6

_TERMINAL_STATES = ("done", "failed", "cancelled")


def validate_trace_records(records: List[Dict[str, Any]]) -> List[str]:
    failures: List[str] = []
    last_seq = None
    starts: Dict[str, Dict[str, Any]] = {}
    ends: Dict[str, Dict[str, Any]] = {}

    for index, record in enumerate(records):
        kind = record.get("type")
        seq = record.get("seq")
        if not isinstance(seq, int):
            failures.append(f"record {index}: missing/non-int seq: {record!r}")
        elif last_seq is not None and seq <= last_seq:
            failures.append(
                f"record {index}: seq {seq} not strictly greater than {last_seq}")
        if isinstance(seq, int):
            last_seq = seq

        if kind == "start":
            span_id = record.get("id")
            if span_id in starts:
                failures.append(f"span {span_id!r}: started twice")
            else:
                starts[span_id] = record
            parent = record.get("parent")
            if parent is not None and parent not in starts:
                failures.append(
                    f"span {span_id!r}: parent {parent!r} unknown or started later")
        elif kind == "end":
            span_id = record.get("id")
            if span_id not in starts:
                failures.append(f"end for unknown span {span_id!r}")
            elif span_id in ends:
                failures.append(f"span {span_id!r}: ended twice")
            else:
                ends[span_id] = record
                if record["ts"] < starts[span_id]["ts"] - _EPS:
                    failures.append(
                        f"span {span_id!r}: end ts {record['ts']} before "
                        f"start ts {starts[span_id]['ts']}")
        elif kind == "event":
            span = record.get("span")
            if span is not None and span not in starts:
                failures.append(
                    f"event {record.get('name')!r}: span {span!r} unknown")
        elif kind == "meta":
            pass
        else:
            failures.append(f"record {index}: unknown type {kind!r}")

    for span_id, start in starts.items():
        if span_id not in ends:
            failures.append(
                f"span {span_id!r} ({start.get('name')!r}) never ended")

    # interval nesting: child ⊆ parent (both must have ended)
    for span_id, start in starts.items():
        parent = start.get("parent")
        if parent is None or span_id not in ends or parent not in ends:
            continue
        p_start, p_end = starts[parent]["ts"], ends[parent]["ts"]
        c_start, c_end = start["ts"], ends[span_id]["ts"]
        if c_start < p_start - _EPS or c_end > p_end + _EPS:
            failures.append(
                f"span {span_id!r} ({start.get('name')!r}) "
                f"[{c_start:.6f}, {c_end:.6f}] escapes parent {parent!r} "
                f"[{p_start:.6f}, {p_end:.6f}]")

    # job spans: exactly one terminal state each
    for span_id, start in starts.items():
        if start.get("name") != "job":
            continue
        end = ends.get(span_id)
        if end is None:
            continue  # already reported as never-ended
        terminal = (end.get("attrs") or {}).get("terminal")
        if terminal not in _TERMINAL_STATES:
            failures.append(
                f"job span {span_id!r}: terminal state {terminal!r} not one "
                f"of {_TERMINAL_STATES}")
    return failures


def validate_trace_file(path: str) -> List[str]:
    """Parse + validate a JSONL trace file (meta header optional)."""

    records = []
    failures: List[str] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                failures.append(f"{path}:{lineno}: not JSON: {exc}")
                continue
            if record.get("type") != "meta":
                records.append(record)
    if failures:
        return failures
    if not records:
        return [f"{path}: no trace records"]
    return validate_trace_records(records)


def validate_chrome_file(path: str) -> List[str]:
    """Check the Chrome trace-event export parses and is structurally sane."""

    try:
        with open(path) as fh:
            document = json.load(fh)
    except ValueError as exc:
        return [f"{path}: not valid JSON: {exc}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents is not a list"]
    failures = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            failures.append(f"{path}: traceEvents[{index}] is not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                failures.append(f"{path}: traceEvents[{index}] missing {key!r}")
    return failures
