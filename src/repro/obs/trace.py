"""Structured tracing: spans, events, and cross-process ingestion.

A :class:`Tracer` records a tree of **spans** (named intervals with a
parent, a start/end timestamp and free-form attributes) interleaved with
point-in-time **events**, as a flat list of dict records ordered by a
single monotone ``seq`` counter.  The record stream is the on-disk JSONL
format (:mod:`repro.obs.export`) verbatim — no intermediate object model
to serialize.

Record shapes::

    {"type": "start", "seq": 0, "id": "s0", "parent": null,
     "name": "job", "ts": 0.0123, "attrs": {...}}
    {"type": "event", "seq": 1, "span": "s0", "name": "cache:get",
     "ts": 0.0130, "attrs": {"outcome": "miss"}}
    {"type": "end",   "seq": 2, "id": "s0", "ts": 0.0200,
     "attrs": {"terminal": "done"}}

Design contract (mirrors the ``on_iteration`` precedent of PR 5):
tracing is **strictly observational**.  The tracer is threaded through
the pipeline as an ``Optional[Tracer]`` that defaults to ``None``; every
instrumentation point is guarded by ``if tracer is not None``, so the
disabled path allocates no spans, takes no locks, and reads no clocks —
traced and untraced runs produce byte-identical artifacts.  All clock
reads live inside this module (``time.perf_counter``); instrumented code
that already measures phases for its own report (the runner's
search/apply/rebuild timings) hands the *existing* readings to
:meth:`Tracer.record_span` instead of sampling new ones.

Cross-process collection: a worker process builds its own local
``Tracer``, and ships :meth:`rebased_records` (timestamps re-zeroed to
the worker's first record) over the procpool pipe.  The parent calls
:meth:`ingest` with the owning attempt span — ids are remapped into the
parent's namespace, fresh ``seq`` values are assigned, root spans are
re-parented under the attempt span, and timestamps are offset to the
attempt span's start, so a process-executor trace reads identically to
a thread-executor one.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Union

#: Timestamp-carrying fields, per record type, for rebasing/offsetting.
_TS_FIELDS = ("ts",)


class Span:
    """A handle to an in-flight span.  Create via :meth:`Tracer.span`."""

    __slots__ = ("tracer", "span_id", "name", "parent_id", "start", "_ended")

    def __init__(self, tracer: "Tracer", span_id: str, name: str,
                 parent_id: Optional[str], start: float):
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start = start
        self._ended = False

    def event(self, name: str, /, **attrs: Any) -> None:
        """Record a point-in-time event parented to this span."""

        self.tracer.event(name, span=self, **attrs)

    def end(self, **attrs: Any) -> None:
        """End the span (idempotent: only the first call emits a record)."""

        self.tracer._end_span(self, attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self._ended:
            self.end(error=exc_type.__name__)
        else:
            self.end()


def _span_id_of(span: Union["Span", str, None]) -> Optional[str]:
    if span is None or isinstance(span, str):
        return span
    return span.span_id


class Tracer:
    """Thread-safe span/event recorder with a global monotone ``seq``."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._records: List[Dict[str, Any]] = []
        self._next_span = 0
        self._next_seq = 0
        self._open: set = set()
        self._tl = threading.local()
        self.spans_started = 0
        self.spans_ended = 0
        self.events_recorded = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, /, parent: Union[Span, str, None] = None,
             **attrs: Any) -> Span:
        """Start a span.  ``parent`` defaults to the thread's bound span."""

        parent_id = _span_id_of(parent)
        if parent_id is None:
            parent_id = self.current_id()
        now = self._clock()
        with self._lock:
            span_id = f"s{self._next_span}"
            self._next_span += 1
            self._records.append({
                "type": "start", "seq": self._next_seq, "id": span_id,
                "parent": parent_id, "name": name, "ts": now, "attrs": attrs,
            })
            self._next_seq += 1
            self._open.add(span_id)
            self.spans_started += 1
        return Span(self, span_id, name, parent_id, now)

    def _end_span(self, span: Span, attrs: Dict[str, Any]) -> None:
        if span._ended:
            return
        span._ended = True
        now = self._clock()
        with self._lock:
            self._records.append({
                "type": "end", "seq": self._next_seq, "id": span.span_id,
                "ts": now, "attrs": attrs,
            })
            self._next_seq += 1
            self._open.discard(span.span_id)
            self.spans_ended += 1

    def record_span(self, name: str, /, start: float, end: float,
                    parent: Union[Span, str, None] = None,
                    **attrs: Any) -> str:
        """Record an already-measured interval (no clock reads).

        Used by instrumented code that times phases for its own report —
        the tracer reuses those readings rather than sampling again, so
        enabling tracing adds no clock reads that could perturb
        outcome-relevant control flow.
        """

        parent_id = _span_id_of(parent)
        if parent_id is None:
            parent_id = self.current_id()
        with self._lock:
            span_id = f"s{self._next_span}"
            self._next_span += 1
            self._records.append({
                "type": "start", "seq": self._next_seq, "id": span_id,
                "parent": parent_id, "name": name, "ts": start, "attrs": attrs,
            })
            self._next_seq += 1
            self._records.append({
                "type": "end", "seq": self._next_seq, "id": span_id,
                "ts": end, "attrs": {},
            })
            self._next_seq += 1
            self.spans_started += 1
            self.spans_ended += 1
        return span_id

    def event(self, name: str, /, span: Union[Span, str, None] = None,
              **attrs: Any) -> None:
        """Record a point-in-time event (parent defaults to the bound span)."""

        span_id = _span_id_of(span)
        if span_id is None:
            span_id = self.current_id()
        now = self._clock()
        with self._lock:
            self._records.append({
                "type": "event", "seq": self._next_seq, "span": span_id,
                "name": name, "ts": now, "attrs": attrs,
            })
            self._next_seq += 1
            self.events_recorded += 1

    def hook(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """``(name, attrs)``-shaped adapter for cache-style trace hooks."""

        self.event(name, **(attrs or {}))

    # -- thread-local parent binding --------------------------------------

    @contextmanager
    def bind(self, span: Union[Span, str]):
        """Bind *span* as the default parent for this thread.

        Instrumentation points that cannot thread an explicit parent
        (shared-cache probes, fault-injection observers) parent their
        events to the bound span, so concurrent jobs' events land under
        the right job/attempt span.
        """

        stack = getattr(self._tl, "stack", None)
        if stack is None:
            stack = self._tl.stack = []
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def current(self) -> Union[Span, str, None]:
        stack = getattr(self._tl, "stack", None)
        return stack[-1] if stack else None

    def current_id(self) -> Optional[str]:
        return _span_id_of(self.current())

    # -- introspection / export -------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Snapshot of all records, in ``seq`` order."""

        with self._lock:
            return list(self._records)

    def rebased_records(self) -> List[Dict[str, Any]]:
        """Records with timestamps re-zeroed to the first record.

        ``perf_counter`` origins differ across processes; a worker ships
        rebased records and the parent supplies the absolute offset at
        :meth:`ingest` time.
        """

        with self._lock:
            records = [dict(record) for record in self._records]
        if not records:
            return records
        base = min(record["ts"] for record in records)
        for record in records:
            record["ts"] = record["ts"] - base
        return records

    def counts(self) -> Dict[str, int]:
        """Tracer self-metrics (a ``MetricsRegistry`` source)."""

        with self._lock:
            return {
                "events": self.events_recorded,
                "open_spans": len(self._open),
                "spans_ended": self.spans_ended,
                "spans_started": self.spans_started,
            }

    # -- cross-process ingestion ------------------------------------------

    def ingest(self, records: List[Dict[str, Any]],
               parent: Union[Span, str, None] = None,
               offset: float = 0.0) -> int:
        """Merge a worker's record stream into this tracer.

        Span ids are remapped into this tracer's namespace, fresh ``seq``
        values preserve the worker-side order, root spans (``parent:
        None``) are re-parented under *parent*, and every timestamp is
        shifted by *offset* (typically the owning attempt span's start,
        matching rebased worker records).  Returns the number of records
        ingested.
        """

        parent_id = _span_id_of(parent)
        if parent_id is None:
            parent_id = self.current_id()
        mapping: Dict[str, str] = {}
        with self._lock:
            for record in records:
                merged = dict(record)
                merged["ts"] = merged.get("ts", 0.0) + offset
                kind = merged.get("type")
                if kind == "start":
                    old = merged["id"]
                    mapping[old] = new = f"s{self._next_span}"
                    self._next_span += 1
                    merged["id"] = new
                    old_parent = merged.get("parent")
                    merged["parent"] = (
                        mapping.get(old_parent, parent_id)
                        if old_parent is not None else parent_id
                    )
                    self._open.add(new)
                    self.spans_started += 1
                elif kind == "end":
                    merged["id"] = mapping.get(merged["id"], merged["id"])
                    self._open.discard(merged["id"])
                    self.spans_ended += 1
                elif kind == "event":
                    old_span = merged.get("span")
                    merged["span"] = (
                        mapping.get(old_span, parent_id)
                        if old_span is not None else parent_id
                    )
                    self.events_recorded += 1
                merged["seq"] = self._next_seq
                self._next_seq += 1
                self._records.append(merged)
        return len(records)
