"""Trace exporters: JSONL event log and Chrome trace-event (Perfetto) JSON.

``accsat --trace FILE`` / ``accsat serve --trace FILE`` write two files:

* **FILE** — the tracer's record stream as JSON Lines, prefixed with a
  ``{"type": "meta", "schema": "repro-obs-trace/1", ...}`` header line.
  This is the canonical, schema-checked format
  (:mod:`repro.obs.check` / ``benchmarks/check_trace.py``).
* **FILE with a ``.chrome.json`` suffix** (:func:`chrome_path_for`) — the
  same spans/events in the Chrome trace-event format, loadable in
  ``chrome://tracing`` or Perfetto: spans become complete (``"X"``)
  events with microsecond timestamps, point events become instants.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

SCHEMA = "repro-obs-trace/1"


def chrome_path_for(path: str) -> str:
    """``out.json`` → ``out.chrome.json`` (suffix-preserving sibling)."""

    root, dot, ext = path.rpartition(".")
    if not dot or "/" in ext or "\\" in ext:
        return path + ".chrome.json"
    return f"{root}.chrome.{ext}"


def write_jsonl(records: List[Dict[str, Any]], path: str,
                meta: Optional[Dict[str, Any]] = None) -> None:
    """Write the record stream as JSON Lines with a leading meta header."""

    header = {"type": "meta", "schema": SCHEMA}
    if meta:
        header.update(meta)
    with open(path, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def load_jsonl(path: str):
    """Read a JSONL trace; returns ``(meta_or_None, records)``."""

    meta = None
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                meta = record
            else:
                records.append(record)
    return meta, records


def to_chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert the record stream to a Chrome trace-event document."""

    starts: Dict[str, Dict[str, Any]] = {}
    trace_events: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "start":
            starts[record["id"]] = record
        elif kind == "end":
            start = starts.pop(record["id"], None)
            if start is None:
                continue
            args = dict(start.get("attrs") or {})
            args.update(record.get("attrs") or {})
            args["id"] = record["id"]
            if start.get("parent") is not None:
                args["parent"] = start["parent"]
            trace_events.append({
                "name": start["name"],
                "ph": "X",
                "ts": start["ts"] * 1e6,
                "dur": max(0.0, (record["ts"] - start["ts"]) * 1e6),
                "pid": 1,
                "tid": 1,
                "cat": "span",
                "args": args,
            })
        elif kind == "event":
            args = dict(record.get("attrs") or {})
            if record.get("span") is not None:
                args["span"] = record["span"]
            trace_events.append({
                "name": record["name"],
                "ph": "i",
                "s": "t",
                "ts": record["ts"] * 1e6,
                "pid": 1,
                "tid": 1,
                "cat": "event",
                "args": args,
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: List[Dict[str, Any]], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(records), fh, sort_keys=True)
        fh.write("\n")


def write_trace_files(records: List[Dict[str, Any]], path: str,
                      meta: Optional[Dict[str, Any]] = None):
    """Write both export formats; returns ``(jsonl_path, chrome_path)``."""

    chrome_path = chrome_path_for(path)
    write_jsonl(records, path, meta=meta)
    write_chrome_trace(records, chrome_path)
    return path, chrome_path


def render_summary(records: List[Dict[str, Any]], width: int = 60) -> str:
    """A human-readable trace digest (span counts/total durations by name,
    event counts by name) — what ``examples/service_quickstart.py`` §6
    prints."""

    starts: Dict[str, Dict[str, Any]] = {}
    span_stats: Dict[str, List[float]] = {}
    event_counts: Dict[str, int] = {}
    for record in records:
        kind = record.get("type")
        if kind == "start":
            starts[record["id"]] = record
        elif kind == "end":
            start = starts.pop(record["id"], None)
            if start is not None:
                span_stats.setdefault(start["name"], []).append(
                    record["ts"] - start["ts"])
        elif kind == "event":
            event_counts[record["name"]] = event_counts.get(record["name"], 0) + 1
    lines = [f"{'span':<{width // 2}} {'count':>7} {'total_s':>10}"]
    for name in sorted(span_stats):
        durations = span_stats[name]
        lines.append(
            f"{name:<{width // 2}} {len(durations):>7} {sum(durations):>10.4f}")
    if event_counts:
        lines.append("")
        lines.append(f"{'event':<{width // 2}} {'count':>7}")
        for name in sorted(event_counts):
            lines.append(f"{name:<{width // 2}} {event_counts[name]:>7}")
    return "\n".join(lines)
