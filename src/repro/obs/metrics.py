"""The metrics registry: counters, gauges, histograms, adapted sources.

One :class:`MetricsRegistry` fronts every counter surface the system has
grown — :class:`~repro.service.stats.ServiceStats`,
:class:`~repro.session.cache.CacheStats`, the fault plan's injection
counts, per-rule :class:`~repro.egraph.runner.RuleStats` aggregates and
the runner's phase times — behind a single :meth:`MetricsRegistry.snapshot`
whose output is a plain JSON-able dict with **deterministic key order**
(recursively sorted).  That snapshot is the exact payload a future HTTP
``/stats`` endpoint serves, and it is what ``accsat serve --report``
emits today.

Native instruments (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
are cheap, thread-safe, and created on first use; *sources* are zero-arg
callables adapted at snapshot time, so existing stats objects keep their
own locking discipline and the registry never caches stale values.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict


def sorted_deep(obj: Any) -> Any:
    """Rebuild *obj* with recursively sorted dict keys (deterministic order)."""

    if isinstance(obj, dict):
        return {key: sorted_deep(obj[key]) for key in sorted(obj)}
    if isinstance(obj, (list, tuple)):
        return [sorted_deep(item) for item in obj]
    return obj


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Streaming count/total/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            mean = self.total / self.count if self.count else None
            return {
                "count": self.count,
                "max": self.max,
                "mean": mean,
                "min": self.min,
                "total": self.total,
            }


class MetricsRegistry:
    """Named instruments plus adapted sources, snapshotted deterministically."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def add_source(self, name: str, fn: Callable[[], Dict[str, Any]]) -> None:
        """Register a zero-arg callable returning a dict, keyed *name*.

        Reserved names (``counters``/``gauges``/``histograms``) are
        rejected — sources appear as top-level snapshot sections.
        """

        if name in ("counters", "gauges", "histograms"):
            raise ValueError(f"source name {name!r} is reserved")
        with self._lock:
            self._sources[name] = fn

    def snapshot(self) -> Dict[str, Any]:
        """One self-consistent document: every source + native instrument.

        Key order is deterministic (recursively sorted); values from
        sources are read at call time under each source's own locking.
        """

        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = {name: h.as_dict() for name, h in self._histograms.items()}
            sources = dict(self._sources)
        data: Dict[str, Any] = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        for name, fn in sources.items():
            data[name] = fn()
        return sorted_deep(data)
