"""Whole-source driver: parse, optimize every kernel, regenerate C."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.frontend import cast as C
from repro.frontend.lexer import LexerError
from repro.frontend.normalize import normalize_blocks
from repro.frontend.parser import ParseError, parse, parse_statement
from repro.frontend.printer import print_c
from repro.saturator.config import SaturatorConfig
from repro.saturator.kernel import find_parallel_kernels
from repro.saturator.pipeline import optimize_kernel
from repro.saturator.report import OptimizationResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.egraph.runner import CancellationToken, IterationCallback
    from repro.session.stages import FaultHook, Stage

__all__ = ["optimize_source", "optimize_ast"]


def optimize_ast(
    root: C.Node,
    config: Optional[SaturatorConfig] = None,
    name_prefix: str = "kernel",
    stages: Optional[Sequence["Stage"]] = None,
    on_iteration: Optional["IterationCallback"] = None,
    cancellation: Optional["CancellationToken"] = None,
    fault_hook: Optional["FaultHook"] = None,
    tracer=None,
    trace_parent=None,
) -> OptimizationResult:
    """Optimize every kernel found under *root*, mutating the AST.

    ``on_iteration`` streams per-iteration saturation progress from every
    kernel's runner, in kernel order (see
    :class:`~repro.egraph.runner.Runner`); ``cancellation`` is shared by
    every kernel's saturation loop — once tripped, each remaining kernel
    either degrades to its anytime snapshot or raises (see
    :class:`~repro.session.stages.SaturationStage`).
    """

    config = config or SaturatorConfig()
    normalize_blocks(root)
    kernels = find_parallel_kernels(root, name_prefix)
    reports = []
    for kernel in kernels:
        kernel_span = None
        if tracer is not None:
            kernel_span = tracer.span(
                "kernel", parent=trace_parent, name=kernel.name
            )
        try:
            _, report = optimize_kernel(
                kernel, config, stages,
                on_iteration=on_iteration,
                cancellation=cancellation,
                fault_hook=fault_hook,
                tracer=tracer,
                trace_parent=None if kernel_span is None else kernel_span.span_id,
            )
        except BaseException as exc:
            if kernel_span is not None:
                kernel_span.end(error=type(exc).__name__)
            raise
        if kernel_span is not None:
            kernel_span.end(
                extracted_cost=report.extracted_cost,
                degraded=report.degraded,
            )
        reports.append(report)
    return OptimizationResult(
        code=print_c(root),
        kernels=reports,
        variant=config.variant.value,
    )


def optimize_source(
    source: str,
    config: Optional[SaturatorConfig] = None,
    name_prefix: str = "kernel",
    stages: Optional[Sequence["Stage"]] = None,
    on_iteration: Optional["IterationCallback"] = None,
    cancellation: Optional["CancellationToken"] = None,
    fault_hook: Optional["FaultHook"] = None,
    tracer=None,
    trace_parent=None,
) -> OptimizationResult:
    """Optimize OpenACC/OpenMP C *source* and return the regenerated code.

    The input may be a whole translation unit (functions and globals) or a
    bare statement/loop nest, which is how the benchmark suite stores its
    kernels.  Only the frontend's own error types trigger the
    bare-statement retry — anything else (an analysis bug, a pipeline
    crash) propagates so real defects are never masked by the fallback.
    """

    config = config or SaturatorConfig()
    root: C.Node
    try:
        root = parse(source)
        if not root.decls:
            root = parse_statement(source)
    except (LexerError, ParseError):
        root = parse_statement(source)
    return optimize_ast(
        root, config, name_prefix, stages,
        on_iteration=on_iteration,
        cancellation=cancellation,
        fault_hook=fault_hook,
        tracer=tracer,
        trace_parent=trace_parent,
    )
