"""Configuration of the ACC Saturator pipeline."""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from repro.egraph.runner import RunnerLimits

__all__ = ["Variant", "SaturatorConfig"]


class Variant(enum.Enum):
    """The four generated-code variants of the paper's evaluation (§VIII).

    ======== =================== =========
    variant  equality saturation bulk load
    ======== =================== =========
    CSE      no                  no
    CSE_SAT  yes                 no
    CSE_BULK no                  yes
    ACCSAT   yes                 yes
    ======== =================== =========

    Every variant goes through the e-graph round trip, so common
    subexpressions (in particular redundant loads) are always eliminated —
    that is what the paper calls the *CSE* baseline.
    """

    CSE = "cse"
    CSE_SAT = "cse+sat"
    CSE_BULK = "cse+bulk"
    ACCSAT = "accsat"

    @property
    def saturate(self) -> bool:
        return self in (Variant.CSE_SAT, Variant.ACCSAT)

    @property
    def bulk_load(self) -> bool:
        return self in (Variant.CSE_BULK, Variant.ACCSAT)

    @staticmethod
    def from_name(name: str) -> "Variant":
        normalized = name.strip().lower().replace("_", "+").replace(" ", "")
        for variant in Variant:
            if variant.value == normalized or variant.name.lower() == name.strip().lower():
                return variant
        raise ValueError(f"unknown variant {name!r}; expected one of "
                         f"{[v.value for v in Variant]}")


@dataclass
class SaturatorConfig:
    """All knobs of the pipeline, with the paper's defaults."""

    #: Which generated-code variant to produce.
    variant: Variant = Variant.ACCSAT
    #: Rule set name (see :func:`repro.rules.ruleset_by_name`).
    ruleset: str = "default"
    #: Extraction method: ``dag-greedy`` (default), ``tree`` or ``ilp``.
    extraction: str = "dag-greedy"
    #: Saturation limits (10k e-nodes / 10 iterations / 10 s, §VII).
    limits: RunnerLimits = field(default_factory=RunnerLimits)
    #: Extraction time limit in seconds (30 s, §VII) — only the ILP
    #: extractor enforces it.
    extraction_time_limit: float = 30.0
    #: Enable constant folding (as an e-class analysis).
    constant_folding: bool = True
    #: Prefix of generated temporaries.
    temp_prefix: str = "_v"
    #: Incremental e-matching: let each rule skip e-classes untouched since
    #: its previous scan (sound — see :mod:`repro.egraph.runner`; set False
    #: to force full rescans every iteration).
    incremental_search: bool = True
    #: Rule-scheduler spelling (see :func:`repro.egraph.schedule.make_scheduler`):
    #: ``"simple"`` (default — the paper's every-rule-every-iteration loop),
    #: ``"backoff[:MATCH_LIMIT[:BAN_LENGTH]]"`` or ``"match-budget[:BUDGET]"``.
    #: Fingerprint-relevant: non-default schedulers change which e-nodes
    #: exist when a limit truncates saturation.
    scheduler: str = "simple"
    #: Anytime extraction: extract from the live e-graph every
    #: ``anytime_interval`` iterations (through the shared
    #: :class:`~repro.egraph.extract.ExtractionMemo`, so each evaluation is
    #: an incremental refresh) and stop saturating once the extracted cost
    #: has not improved for ``plateau_patience`` consecutive evaluations.
    #: Fingerprint-relevant: early stopping changes the saturated e-graph.
    anytime_extraction: bool = False
    anytime_interval: int = 1
    plateau_patience: int = 3

    def with_variant(self, variant: Variant) -> "SaturatorConfig":
        """A copy of this config with a different variant."""

        # dataclasses.replace copies every field, including ones added
        # after this method was written
        return dataclasses.replace(self, variant=variant)
