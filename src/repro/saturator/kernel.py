"""Discovery of offloaded kernels and their innermost parallel loops.

ACC Saturator optimizes "the sequential parts of parallel loops": for each
compute construct it locates the innermost loop that still carries
parallelism (``gang``/``worker``/``vector``/``simd`` or an OpenMP
work-sharing directive) and hands its body to the SSA builder.  Loops
nested *inside* that body are sequential (e.g. the ``l`` reduction loop of
the matrix-multiplication example in Listing 1) and are optimized as part
of the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend import cast as C
from repro.frontend.pragma import Directive, DirectiveKind

__all__ = ["ParallelKernel", "find_parallel_kernels", "innermost_parallel_loop"]


@dataclass
class ParallelKernel:
    """One offloaded kernel: a directive and its loop nest."""

    #: The pragma node that opens the compute construct.
    pragma: C.Pragma
    #: The outermost loop of the kernel.
    loop: C.For
    #: The innermost parallel loop (its body is what gets optimized).
    innermost: C.For
    #: Every directive seen on the way down (outermost first).
    directives: List[Directive] = field(default_factory=list)
    #: Kernel name (assigned by the caller, e.g. ``bt_kernel_3``).
    name: str = ""

    @property
    def body(self) -> C.Block:
        """The body block of the innermost parallel loop."""

        body = self.innermost.body
        if isinstance(body, C.Block):
            return body
        raise TypeError("kernel loop body has not been normalised to a block")


def _first_loop(stmt: Optional[C.Stmt]) -> Optional[C.For]:
    """The first ``for`` loop found under *stmt* (skipping pragmas/blocks)."""

    if stmt is None:
        return None
    if isinstance(stmt, C.For):
        return stmt
    if isinstance(stmt, C.Pragma):
        return _first_loop(stmt.stmt)
    if isinstance(stmt, C.Block):
        for inner in stmt.stmts:
            loop = _first_loop(inner)
            if loop is not None:
                return loop
    return None


def _directive_of(stmt: C.Stmt) -> Optional[Directive]:
    if isinstance(stmt, C.Pragma) and isinstance(stmt.directive, Directive):
        return stmt.directive
    return None


def innermost_parallel_loop(loop: C.For, directives: List[Directive]) -> C.For:
    """Descend a loop nest and return the innermost loop that is parallel.

    A nested loop continues the descent when it is annotated with a loop
    directive expressing parallelism (OpenACC ``loop`` with gang/worker/
    vector, OpenMP ``for``/``simd``/``distribute``) or, for the ``kernels``
    construct, when it is the only statement of the parent body (NVHPC
    auto-parallelises such nests).
    """

    body = loop.body
    stmts = body.stmts if isinstance(body, C.Block) else [body]

    # Strip leading pragmas attached to the next statement.
    meaningful = [s for s in stmts if not (isinstance(s, C.Pragma) and s.stmt is None)]

    if len(meaningful) != 1:
        return loop
    only = meaningful[0]

    directive = _directive_of(only)
    if directive is not None and isinstance(only, C.Pragma):
        inner = _first_loop(only.stmt)
        if inner is not None and directive.is_loop_directive:
            directives.append(directive)
            return innermost_parallel_loop(inner, directives)
        return loop

    if isinstance(only, C.For):
        # unannotated nested loop: under a `kernels` construct compilers
        # parallelise these too; under `parallel` they are sequential.
        in_kernels = any("kernels" in d.names for d in directives)
        if in_kernels:
            return innermost_parallel_loop(only, directives)
        return loop

    return loop


def find_parallel_kernels(node: C.Node, name_prefix: str = "kernel") -> List[ParallelKernel]:
    """Find every offloaded kernel under *node* (a translation unit,
    function, or statement)."""

    kernels: List[ParallelKernel] = []

    def visit(stmt: C.Node) -> None:
        if isinstance(stmt, C.Pragma):
            directive = _directive_of(stmt)
            if directive is not None and directive.kind in (DirectiveKind.ACC, DirectiveKind.OMP) \
                    and directive.is_compute_construct:
                loop = _first_loop(stmt.stmt)
                if loop is not None:
                    directives = [directive]
                    innermost = innermost_parallel_loop(loop, directives)
                    kernels.append(
                        ParallelKernel(
                            pragma=stmt,
                            loop=loop,
                            innermost=innermost,
                            directives=directives,
                            name=f"{name_prefix}_{len(kernels)}",
                        )
                    )
                    return  # do not descend into an already-captured kernel
            if stmt.stmt is not None:
                visit(stmt.stmt)
            return
        for child in stmt.children():
            visit(child)

    visit(node)
    return kernels
