"""The ACC Saturator pipeline: the paper's primary contribution.

This package wires the substrates together exactly as §III describes:

1. parse the OpenACC/OpenMP C source and locate every innermost parallel
   loop (:mod:`repro.saturator.kernel`),
2. build the SSA form of each loop body and pack it into an e-graph
   (:mod:`repro.ssa`),
3. optionally run equality saturation with the Table I rule set
   (:mod:`repro.rules`, :mod:`repro.egraph.runner`),
4. extract the minimum-cost DAG under the paper's cost model
   (:mod:`repro.egraph.extract`, :mod:`repro.cost`),
5. regenerate code with temporary-variable insertion and (optionally) the
   bulk-load reordering (:mod:`repro.codegen`).

The four generated-code variants evaluated in §VIII — CSE, CSE+SAT,
CSE+BULK and ACCSAT — correspond to the :class:`Variant` enum.
"""

from repro.saturator.config import SaturatorConfig, Variant
from repro.saturator.report import KernelReport, OptimizationResult
from repro.saturator.kernel import ParallelKernel, find_parallel_kernels
from repro.saturator.pipeline import optimize_kernel
from repro.saturator.driver import optimize_source

__all__ = [
    "KernelReport",
    "OptimizationResult",
    "ParallelKernel",
    "SaturatorConfig",
    "Variant",
    "find_parallel_kernels",
    "optimize_kernel",
    "optimize_source",
]
