"""The per-kernel optimization pipeline (paper §III, steps 1–3).

The pipeline is a composition of the typed stages defined in
:mod:`repro.session.stages` — frontend/SSA, e-graph build, saturation,
extraction, code generation — run over a :class:`StageContext` that
carries the per-kernel artifacts between them.  :func:`optimize_loop_body`
is the classic entry point: it builds the context, runs the default stage
tuple (or a caller-supplied one, which is how new stages are spliced in),
and returns the generated-kernel summary plus the per-kernel report.

Whole-source callers that want artifact caching or batch execution should
go through :class:`repro.session.OptimizationSession`, which wraps this
pipeline with a content-addressed cache and pluggable executors; this
module stays the single place where the stage order is defined for a cold
run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.codegen.generator import GeneratedKernel
from repro.egraph.extract import ExtractionMemo
from repro.egraph.runner import CancellationToken, IterationCallback
from repro.frontend import cast as C
from repro.frontend.normalize import normalize_blocks
from repro.saturator.config import SaturatorConfig
from repro.saturator.kernel import ParallelKernel
from repro.saturator.report import KernelReport

if TYPE_CHECKING:  # pragma: no cover - imported lazily to break the cycle
    from repro.session.stages import FaultHook, Stage

__all__ = ["optimize_kernel", "optimize_loop_body"]


def optimize_loop_body(
    body: C.Block,
    config: Optional[SaturatorConfig] = None,
    name: str = "kernel",
    stages: Optional[Sequence["Stage"]] = None,
    extraction_memo: Optional[ExtractionMemo] = None,
    on_iteration: Optional[IterationCallback] = None,
    cancellation: Optional[CancellationToken] = None,
    fault_hook: Optional["FaultHook"] = None,
    tracer=None,
    trace_parent=None,
) -> Tuple[GeneratedKernel, KernelReport]:
    """Optimize the body of one innermost parallel loop, in place.

    Returns the generated-kernel summary and the per-kernel report.  The
    *body* block is mutated (right-hand sides rewritten, temporaries
    inserted); callers that need the original must clone it first.

    ``stages`` overrides the default stage tuple (see
    :data:`repro.session.stages.DEFAULT_STAGES`); ``extraction_memo``
    shares extraction DP state across repeated runs on one e-graph;
    ``on_iteration`` streams per-iteration saturation progress (see
    :class:`~repro.egraph.runner.Runner`); ``cancellation`` threads a
    deadline/cancel token into the saturation loop; ``fault_hook`` is the
    fault-injection hook called at stage boundaries.
    """

    # deferred: repro.session.stages imports this package's config/report
    # modules, and importing either package must not require the other to
    # be fully initialized
    from repro.session.stages import StageContext, run_stages

    ctx = StageContext(
        body=body,
        config=config or SaturatorConfig(),
        name=name,
        extraction_memo=extraction_memo,
        on_iteration=on_iteration,
        cancellation=cancellation,
        fault_hook=fault_hook,
        tracer=tracer,
        trace_span=trace_parent,
    )
    run_stages(ctx, stages)
    return ctx.generated, ctx.report


def optimize_kernel(
    kernel: ParallelKernel,
    config: Optional[SaturatorConfig] = None,
    stages: Optional[Sequence["Stage"]] = None,
    on_iteration: Optional[IterationCallback] = None,
    cancellation: Optional[CancellationToken] = None,
    fault_hook: Optional["FaultHook"] = None,
    tracer=None,
    trace_parent=None,
) -> Tuple[GeneratedKernel, KernelReport]:
    """Optimize one discovered kernel in place (see :func:`optimize_loop_body`)."""

    config = config or SaturatorConfig()
    normalize_blocks(kernel.innermost)
    return optimize_loop_body(
        kernel.body, config, kernel.name, stages,
        on_iteration=on_iteration,
        cancellation=cancellation,
        fault_hook=fault_hook,
        tracer=tracer,
        trace_parent=trace_parent,
    )
