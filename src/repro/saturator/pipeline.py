"""The per-kernel optimization pipeline (paper §III, steps 1–3)."""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.codegen.generator import (
    CodeGenerator,
    GeneratedKernel,
    count_ast_stats,
    count_term_stats,
)
from repro.cost import AccSaturatorCostModel
from repro.egraph.egraph import EGraph
from repro.egraph.extract import ExtractionResult, extract_best
from repro.egraph.runner import Runner, RunnerReport
from repro.frontend import cast as C
from repro.frontend.normalize import normalize_blocks
from repro.rules import constant_folding_analysis, ruleset_by_name
from repro.saturator.config import SaturatorConfig
from repro.saturator.kernel import ParallelKernel
from repro.saturator.report import KernelReport
from repro.ssa import KernelSSA, build_ssa

__all__ = ["optimize_kernel", "optimize_loop_body"]


def optimize_loop_body(
    body: C.Block,
    config: Optional[SaturatorConfig] = None,
    name: str = "kernel",
) -> Tuple[GeneratedKernel, KernelReport]:
    """Optimize the body of one innermost parallel loop, in place.

    Returns the generated-kernel summary and the per-kernel report.  The
    *body* block is mutated (right-hand sides rewritten, temporaries
    inserted); callers that need the original must clone it first.
    """

    config = config or SaturatorConfig()
    report = KernelReport(name=name)

    t0 = time.perf_counter()

    # 1. SSA construction
    normalize_blocks(body)
    report.original = count_ast_stats(body)
    ssa: KernelSSA = build_ssa(body)
    report.assignments = ssa.num_assignments
    report.groups = len(ssa.groups)

    # 2. e-graph creation (always: this is what provides CSE)
    analysis = constant_folding_analysis() if config.constant_folding else None
    egraph = EGraph(analysis)
    root_of: Dict[int, int] = {}
    store_class_of: Dict[int, int] = {}
    for info in ssa.all_assignments():
        if info.term is None:
            continue
        root_of[info.ssa_id] = egraph.add_term(info.term)
        if info.store_term is not None:
            store_class_of[info.ssa_id] = egraph.add_term(info.store_term)
    egraph.rebuild()
    ssa_egraph_time = time.perf_counter() - t0

    # 3. equality saturation (CSE+SAT / ACCSAT only)
    runner_report: Optional[RunnerReport] = None
    saturation_time = 0.0
    if config.variant.saturate:
        t1 = time.perf_counter()
        rules = ruleset_by_name(config.ruleset)
        runner = Runner(
            egraph, rules, config.limits, incremental=config.incremental_search
        )
        runner_report = runner.run()
        saturation_time = time.perf_counter() - t1
    report.runner = runner_report
    report.saturation_time = saturation_time
    report.egraph_nodes = len(egraph)
    report.egraph_classes = egraph.num_classes

    # 4. extraction
    t2 = time.perf_counter()
    cost_model = AccSaturatorCostModel()
    roots = list(root_of.values())
    extraction: ExtractionResult
    if roots:
        extraction = extract_best(
            egraph, roots, cost_model, config.extraction, config.extraction_time_limit
        )
    else:
        extraction = ExtractionResult({}, {}, 0.0, 0.0, config.extraction)
    report.extraction_time = time.perf_counter() - t2
    report.extracted_cost = extraction.dag_cost

    # 5. code generation
    t3 = time.perf_counter()
    generator = CodeGenerator(
        egraph,
        extraction,
        ssa,
        root_of,
        store_class_of,
        bulk_load=config.variant.bulk_load,
        temp_prefix=config.temp_prefix,
    )
    generated = generator.generate()
    codegen_time = time.perf_counter() - t3

    report.ssa_codegen_time = ssa_egraph_time + codegen_time
    report.optimized = generated.stats
    return generated, report


def optimize_kernel(
    kernel: ParallelKernel,
    config: Optional[SaturatorConfig] = None,
) -> Tuple[GeneratedKernel, KernelReport]:
    """Optimize one discovered kernel in place (see :func:`optimize_loop_body`)."""

    config = config or SaturatorConfig()
    normalize_blocks(kernel.innermost)
    return optimize_loop_body(kernel.body, config, kernel.name)
