"""Report structures returned by the pipeline.

These mirror the numbers the paper reports in §VII (SSA/codegen time,
saturation time, e-node counts) and §VIII (instruction and memory-access
deltas), so the experiment harness can regenerate the evaluation tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codegen.generator import KernelCodeStats
from repro.egraph.runner import RunnerReport

__all__ = ["KernelReport", "OptimizationResult"]


@dataclass
class KernelReport:
    """Per-kernel statistics gathered along the pipeline."""

    name: str = ""
    #: SSA construction + code generation time (seconds) — the paper's
    #: "91.8 ms per kernel" metric.
    ssa_codegen_time: float = 0.0
    #: Equality-saturation time (seconds) — the paper's "0.63 s" metric.
    saturation_time: float = 0.0
    extraction_time: float = 0.0
    #: Saturation statistics (None when the variant does not saturate).
    runner: Optional[RunnerReport] = None
    #: E-graph size after (optional) saturation.
    egraph_nodes: int = 0
    egraph_classes: int = 0
    #: Number of SSA assignments / groups.
    assignments: int = 0
    groups: int = 0
    #: Operation counts before optimization (original code).
    original: KernelCodeStats = field(default_factory=KernelCodeStats)
    #: Operation counts after optimization (generated code).
    optimized: KernelCodeStats = field(default_factory=KernelCodeStats)
    #: DAG cost of the extracted solution under the paper's cost model.
    extracted_cost: float = 0.0
    #: True when this report came out of a session artifact cache instead
    #: of a pipeline run (see :mod:`repro.session`); every other field is
    #: identical to the cold run that produced the artifact.
    from_cache: bool = False
    #: Extraction-memo counters (reused/recomputed classes, result hits)
    #: when the extraction stage ran with a shared
    #: :class:`~repro.egraph.extract.ExtractionMemo`; None otherwise.
    extraction_memo: Optional[Dict[str, int]] = None
    #: True when a deadline stopped saturation early and the artifact was
    #: built from the best-so-far anytime snapshot (graceful degradation).
    #: The code is still correct — just not saturated as deep as asked —
    #: and degraded artifacts are never stored in shared caches.
    degraded: bool = False

    @property
    def load_reduction(self) -> float:
        """Fractional reduction in memory loads (0.5 == 50% fewer loads)."""

        if self.original.loads == 0:
            return 0.0
        return 1.0 - self.optimized.loads / self.original.loads

    @property
    def instruction_reduction(self) -> float:
        if self.original.instructions == 0:
            return 0.0
        return 1.0 - self.optimized.instructions / self.original.instructions

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "ssa_codegen_time": self.ssa_codegen_time,
            "saturation_time": self.saturation_time,
            "extraction_time": self.extraction_time,
            "egraph_nodes": self.egraph_nodes,
            "egraph_classes": self.egraph_classes,
            "assignments": self.assignments,
            "groups": self.groups,
            "original": self.original.as_dict(),
            "optimized": self.optimized.as_dict(),
            "extracted_cost": self.extracted_cost,
            "from_cache": self.from_cache,
            "extraction_memo": self.extraction_memo,
            "degraded": self.degraded,
            "load_reduction": self.load_reduction,
            "instruction_reduction": self.instruction_reduction,
            # full saturation profile (per-iteration and per-rule stats)
            "runner": None if self.runner is None else self.runner.as_dict(),
        }


@dataclass
class OptimizationResult:
    """Result of optimizing a source file (or a single kernel)."""

    #: Regenerated C source (directives and structure preserved).
    code: str
    #: Per-kernel reports, in source order.
    kernels: List[KernelReport] = field(default_factory=list)
    #: The variant that produced this code.
    variant: str = ""

    @property
    def degraded(self) -> bool:
        """True when any kernel was built from a deadline-degraded snapshot."""

        return any(k.degraded for k in self.kernels)

    @property
    def total_ssa_codegen_time(self) -> float:
        return sum(k.ssa_codegen_time for k in self.kernels)

    @property
    def total_saturation_time(self) -> float:
        return sum(k.saturation_time for k in self.kernels)

    def kernel(self, name: str) -> KernelReport:
        for report in self.kernels:
            if report.name == name:
                return report
        raise KeyError(name)
