"""Typed, composable stages of the per-kernel optimization pipeline.

The monolithic ``optimize_loop_body`` of early versions is decomposed into
five stages, each a small object that reads and writes well-known slots of
a shared :class:`StageContext`:

========== ===================== ==========================================
stage      requires              provides
========== ===================== ==========================================
frontend   ``body``              ``ssa`` (normalized AST, SSA form)
egraph     ``ssa``               ``egraph``, ``root_of``, ``store_class_of``
saturate   ``egraph``            ``report.runner`` (when the variant saturates)
extract    ``egraph``            ``extraction``
codegen    ``extraction``        ``generated``
========== ===================== ==========================================

:func:`run_stages` executes a stage list over a context, verifies the
``requires`` contract, and records per-stage wall-clock times in
``ctx.stage_times``; the classic report fields (``ssa_codegen_time``,
``saturation_time``, ``extraction_time``) are derived from those times so
the staged pipeline reports exactly what the monolithic one did.

Adding a stage is three steps: subclass :class:`Stage` (set ``name``,
``requires`` and ``run``), splice an instance into a stage tuple, and pass
that tuple to ``optimize_loop_body(stages=...)`` or
:class:`~repro.session.session.OptimizationSession`.  Stages are
stateless — per-kernel state lives only in the context — so one stage
instance can serve any number of concurrent kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.codegen.generator import CodeGenerator, GeneratedKernel, count_ast_stats
from repro.cost import AccSaturatorCostModel
from repro.egraph.egraph import EGraph
from repro.egraph.extract import (
    ExtractionMemo,
    ExtractionResult,
    extract_best,
    resolve_result,
)
from repro.egraph.runner import (
    AnytimeExtraction,
    CancellationToken,
    IterationCallback,
    Runner,
    StopReason,
)
from repro.frontend import cast as C
from repro.frontend.normalize import normalize_blocks
from repro.rules import constant_folding_analysis, ruleset_by_name
from repro.saturator.config import SaturatorConfig
from repro.saturator.report import KernelReport
from repro.ssa import KernelSSA, build_ssa

__all__ = [
    "CodegenStage",
    "DEFAULT_STAGES",
    "DeadlineExceeded",
    "EGraphBuildStage",
    "ExtractionStage",
    "FaultHook",
    "FrontendStage",
    "SaturationCancelled",
    "SaturationStage",
    "Stage",
    "StageContext",
    "StageError",
    "run_stages",
]

#: Fault-injection hook: called with a site name (``"stage:<name>"`` from
#: :func:`run_stages`; the cache and service layers use their own site
#: names).  A no-op in production; the fault harness raises from it.
FaultHook = Callable[[str], None]


class StageError(RuntimeError):
    """A stage ran before one of its required artifacts was produced."""


class DeadlineExceeded(RuntimeError):
    """A deadline tripped before any anytime snapshot existed.

    Raised by :class:`SaturationStage` when the cancellation token stopped
    the runner with :attr:`~repro.egraph.runner.StopReason.DEADLINE` and
    there is no best-so-far extraction to degrade to — the pipeline has
    nothing correct to ship, so the kernel (and the job above it) fails.
    """


class SaturationCancelled(RuntimeError):
    """The cancellation token was explicitly cancelled mid-saturation."""


@dataclass
class StageContext:
    """Mutable state threaded through the stage pipeline for one kernel."""

    #: Body of the innermost parallel loop (mutated by code generation).
    body: C.Block
    config: SaturatorConfig
    name: str = "kernel"
    #: Per-kernel statistics, filled in as stages run.
    report: KernelReport = field(default_factory=KernelReport)
    # -- artifacts -----------------------------------------------------------
    ssa: Optional[KernelSSA] = None
    egraph: Optional[EGraph] = None
    #: SSA id -> e-class of the assignment's value / its store expression.
    root_of: Dict[int, int] = field(default_factory=dict)
    store_class_of: Dict[int, int] = field(default_factory=dict)
    extraction: Optional[ExtractionResult] = None
    generated: Optional[GeneratedKernel] = None
    #: Optional shared DP state for repeated extraction of this e-graph.
    extraction_memo: Optional[ExtractionMemo] = None
    #: Progress hook handed to the saturation loop (see
    #: :class:`~repro.egraph.runner.Runner`); not part of the cache
    #: fingerprint — it observes the run, it never changes its outcome.
    on_iteration: Optional[IterationCallback] = None
    #: Cooperative cancellation/deadline token threaded into the
    #: saturation loop; like ``on_iteration`` it is not part of the cache
    #: fingerprint — a degraded result is never cached (see
    #: :meth:`~repro.session.session.OptimizationSession.run_detailed`).
    cancellation: Optional[CancellationToken] = None
    #: Fault-injection hook called at stage boundaries (``"stage:<name>"``);
    #: ``None`` in production.  See :mod:`repro.service.faults`.
    fault_hook: Optional[FaultHook] = None
    #: Optional :class:`repro.obs.Tracer` — strictly observational, like
    #: ``on_iteration``: never part of the cache fingerprint; traced and
    #: untraced runs produce byte-identical artifacts.
    tracer: Optional[object] = None
    #: Parent span id for this kernel's stage spans (set by the caller);
    #: :func:`run_stages` re-points it at each running stage's span so the
    #: saturation loop's iteration spans nest under ``stage:saturate``.
    trace_span: Optional[str] = None
    #: Best in-loop extraction snapshot (set by :class:`SaturationStage`
    #: when anytime extraction ran with ``keep_best``); its class ids are
    #: canonical at the iteration that produced it, so consumers rebase
    #: them with :func:`~repro.egraph.extract.resolve_result`.
    anytime_best: Optional[ExtractionResult] = None
    #: Wall-clock seconds per stage name (accumulated by :func:`run_stages`).
    stage_times: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.report.name:
            self.report.name = self.name


class Stage:
    """One step of the pipeline; subclasses override :meth:`run`."""

    #: Stage name (also the cache-key stage component and timing key).
    name: str = "stage"
    #: Context attributes that must be non-None before this stage runs.
    requires: Tuple[str, ...] = ()

    def run(self, ctx: StageContext) -> None:
        raise NotImplementedError

    def check(self, ctx: StageContext) -> None:
        for attr in self.requires:
            if getattr(ctx, attr) is None:
                raise StageError(
                    f"stage {self.name!r} requires {attr!r}, which no earlier "
                    f"stage produced"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


class FrontendStage(Stage):
    """Normalize the loop body and build its SSA form."""

    name = "frontend"
    requires = ("body",)

    def run(self, ctx: StageContext) -> None:
        normalize_blocks(ctx.body)
        ctx.report.original = count_ast_stats(ctx.body)
        ctx.ssa = build_ssa(ctx.body)
        ctx.report.assignments = ctx.ssa.num_assignments
        ctx.report.groups = len(ctx.ssa.groups)


class EGraphBuildStage(Stage):
    """Pack every SSA assignment into a fresh e-graph (this alone is CSE)."""

    name = "egraph"
    requires = ("ssa",)

    def run(self, ctx: StageContext) -> None:
        analysis = (
            constant_folding_analysis() if ctx.config.constant_folding else None
        )
        egraph = EGraph(analysis)
        for info in ctx.ssa.all_assignments():
            if info.term is None:
                continue
            ctx.root_of[info.ssa_id] = egraph.add_term(info.term)
            if info.store_term is not None:
                ctx.store_class_of[info.ssa_id] = egraph.add_term(info.store_term)
        egraph.rebuild()
        ctx.egraph = egraph


class SaturationStage(Stage):
    """Equality saturation (CSE+SAT / ACCSAT variants only).

    The saturation loop is driven by the rule scheduler named in
    ``config.scheduler``; with ``config.anytime_extraction`` the runner
    additionally extracts in-loop every ``config.anytime_interval``
    iterations and stops on a ``config.plateau_patience`` cost plateau.
    The anytime memo is shared through ``ctx.extraction_memo``, so the
    downstream :class:`ExtractionStage` reuses the warm DP table — and,
    when the loop stopped right after an evaluation, the final extraction
    is a whole-result cache hit.
    """

    name = "saturate"
    requires = ("egraph",)

    def run(self, ctx: StageContext) -> None:
        config = ctx.config
        if config.variant.saturate:
            rules = ruleset_by_name(config.ruleset)
            anytime = None
            if config.anytime_extraction:
                roots = list(ctx.root_of.values())
                if roots:
                    if ctx.extraction_memo is None:
                        ctx.extraction_memo = ExtractionMemo()
                    anytime = AnytimeExtraction(
                        roots=roots,
                        cost_model=AccSaturatorCostModel(),
                        method=config.extraction,
                        interval=config.anytime_interval,
                        patience=config.plateau_patience,
                        memo=ctx.extraction_memo,
                        time_limit=config.extraction_time_limit,
                    )
            runner = Runner(
                ctx.egraph, rules, config.limits,
                incremental=config.incremental_search,
                scheduler=config.scheduler,
                anytime=anytime,
                on_iteration=ctx.on_iteration,
                cancellation=ctx.cancellation,
                tracer=ctx.tracer,
                trace_parent=ctx.trace_span,
            )
            ctx.report.runner = runner.run()
            if anytime is not None:
                ctx.anytime_best = anytime.best_result
            stop = ctx.report.runner.stop_reason
            if stop is StopReason.CANCELLED:
                raise SaturationCancelled(
                    f"kernel {ctx.name!r} cancelled mid-saturation"
                )
            if stop is StopReason.DEADLINE:
                if ctx.anytime_best is None:
                    raise DeadlineExceeded(
                        f"kernel {ctx.name!r}: deadline tripped with no "
                        f"anytime snapshot to degrade to"
                    )
                # Degrade gracefully: the loop stopped at an iteration
                # boundary where the e-graph and the anytime snapshot are
                # exactly what a plateau stop at the same boundary would
                # hold, so downstream extraction/codegen proceed normally
                # and the artifact is byte-identical — just flagged.
                ctx.report.degraded = True
        ctx.report.egraph_nodes = len(ctx.egraph)
        ctx.report.egraph_classes = ctx.egraph.num_classes


class ExtractionStage(Stage):
    """Extract the minimum-cost DAG under the paper's cost model.

    When the saturation loop ran with anytime extraction, the stage also
    considers the **best in-loop snapshot** (``ctx.anytime_best``): greedy
    DAG extraction can regress as the e-graph grows, so the selection at
    an earlier iteration boundary may beat the final one.  The snapshot is
    rebased onto the final e-graph (class ids re-resolved against later
    merges — :func:`~repro.egraph.extract.resolve_result`) and shipped
    whenever its re-priced DAG cost strictly beats the final extraction;
    a snapshot the merges invalidated falls back to the final extraction.
    Both candidates are pure functions of (source, config), so the choice
    between them is too.
    """

    name = "extract"
    requires = ("egraph",)

    def run(self, ctx: StageContext) -> None:
        config = ctx.config
        cost_model = AccSaturatorCostModel()
        roots = list(ctx.root_of.values())
        if roots:
            final = extract_best(
                ctx.egraph,
                roots,
                cost_model,
                config.extraction,
                config.extraction_time_limit,
                memo=ctx.extraction_memo,
            )
            extract_elapsed = final.elapsed
            ctx.extraction = final
            if ctx.anytime_best is not None:
                best = resolve_result(
                    ctx.egraph, ctx.anytime_best, roots, cost_model
                )
                if best is not None and best.dag_cost < final.dag_cost - 1e-12:
                    ctx.extraction = best
        else:
            ctx.extraction = ExtractionResult({}, {}, 0.0, 0.0, config.extraction)
            extract_elapsed = 0.0
        ctx.report.extracted_cost = ctx.extraction.dag_cost
        if ctx.report.runner is not None:
            # complete the runner's search/apply/rebuild phase profile with
            # the extraction time so one report carries the full breakdown
            # (added on top of any in-loop anytime extraction time the
            # runner already accumulated; when the anytime snapshot wins,
            # the final extraction still ran — its time is what this stage
            # spent, the snapshot's own elapsed was counted in-loop)
            ctx.report.runner.extract_time += extract_elapsed
        if ctx.extraction_memo is not None:
            ctx.report.extraction_memo = ctx.extraction_memo.stats_dict()


class CodegenStage(Stage):
    """Regenerate the loop body from the extracted selection."""

    name = "codegen"
    requires = ("egraph", "extraction", "ssa")

    def run(self, ctx: StageContext) -> None:
        config = ctx.config
        generator = CodeGenerator(
            ctx.egraph,
            ctx.extraction,
            ctx.ssa,
            ctx.root_of,
            ctx.store_class_of,
            bulk_load=config.variant.bulk_load,
            temp_prefix=config.temp_prefix,
        )
        ctx.generated = generator.generate()
        ctx.report.optimized = ctx.generated.stats


#: The paper's pipeline, in order (§III steps 1-3 plus code generation).
DEFAULT_STAGES: Tuple[Stage, ...] = (
    FrontendStage(),
    EGraphBuildStage(),
    SaturationStage(),
    ExtractionStage(),
    CodegenStage(),
)


def run_stages(
    ctx: StageContext, stages: Optional[Sequence[Stage]] = None
) -> StageContext:
    """Run *stages* (default: the full pipeline) over *ctx*, timing each.

    After the run the classic report timing fields are derived from the
    per-stage times: ``saturation_time`` and ``extraction_time`` map to
    their stages, every other stage (frontend, e-graph build, codegen, any
    custom stage) counts toward ``ssa_codegen_time`` — the same accounting
    the paper uses for its "SSA/codegen" vs "saturation" split.
    """

    tracer = ctx.tracer
    trace_parent = ctx.trace_span
    for stage in (DEFAULT_STAGES if stages is None else stages):
        stage.check(ctx)
        if ctx.fault_hook is not None:
            ctx.fault_hook(f"stage:{stage.name}")
        span = None
        if tracer is not None:
            # span names reuse the fault-hook site strings (the
            # ``stage:`` prefix family of repro.obs.sites), and the
            # running stage's span becomes ``ctx.trace_span`` so child
            # work (the saturation loop's iteration spans) nests under it
            span = tracer.span(
                f"stage:{stage.name}", parent=trace_parent, kernel=ctx.name
            )
            ctx.trace_span = span.span_id
        t0 = time.perf_counter()
        try:
            stage.run(ctx)
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
                ctx.trace_span = trace_parent
            raise
        elapsed = time.perf_counter() - t0
        if span is not None:
            span.end()
            ctx.trace_span = trace_parent
        ctx.stage_times[stage.name] = ctx.stage_times.get(stage.name, 0.0) + elapsed

    report = ctx.report
    times = ctx.stage_times
    # a variant that never ran the saturation loop reports exactly 0.0,
    # not the microseconds of stage overhead
    report.saturation_time = (
        times.get(SaturationStage.name, 0.0) if report.runner is not None else 0.0
    )
    report.extraction_time = times.get(ExtractionStage.name, 0.0)
    report.ssa_codegen_time = sum(
        elapsed
        for name, elapsed in times.items()
        if name not in (SaturationStage.name, ExtractionStage.name)
    )
    return ctx
