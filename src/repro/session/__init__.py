"""Staged optimization sessions.

This package turns the per-kernel pipeline into reusable infrastructure:

* :mod:`repro.session.stages` — the pipeline as typed, composable stages
  over a shared :class:`~repro.session.stages.StageContext`,
* :mod:`repro.session.fingerprint` / :mod:`repro.session.cache` — a
  content-addressed artifact cache (memory, disk, tiered backends) keyed
  on (source fingerprint, config fingerprint, stage),
* :mod:`repro.session.executor` — serial / thread / process batch
  executors with order-preserving ``map``,
* :mod:`repro.session.session` — :class:`OptimizationSession`, which ties
  the three together for cached, batched whole-source optimization.

The experiment harness (:mod:`repro.experiments.common`), the ``accsat``
CLI and the engine benchmark all build on this package.
"""

from repro.session.cache import (
    MISS,
    ArtifactCache,
    CacheStats,
    DiskCache,
    MemoryCache,
    TieredCache,
)
from repro.session.executor import (
    BatchExecutor,
    ExecutorBrokenError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.session.fingerprint import (
    CacheKey,
    fingerprint_config,
    fingerprint_text,
    stage_key,
)
from repro.session.stages import (
    DEFAULT_STAGES,
    CodegenStage,
    EGraphBuildStage,
    ExtractionStage,
    FrontendStage,
    SaturationStage,
    Stage,
    StageContext,
    StageError,
    run_stages,
)
from repro.session.session import OptimizationSession

__all__ = [
    "MISS",
    "ArtifactCache",
    "BatchExecutor",
    "ExecutorBrokenError",
    "CacheKey",
    "CacheStats",
    "CodegenStage",
    "DEFAULT_STAGES",
    "DiskCache",
    "EGraphBuildStage",
    "ExtractionStage",
    "FrontendStage",
    "MemoryCache",
    "OptimizationSession",
    "ProcessExecutor",
    "SaturationStage",
    "SerialExecutor",
    "Stage",
    "StageContext",
    "StageError",
    "ThreadExecutor",
    "TieredCache",
    "fingerprint_config",
    "fingerprint_text",
    "make_executor",
    "run_stages",
    "stage_key",
]
