"""Content-addressed artifact cache for optimization sessions.

Three backends share one tiny interface (:class:`ArtifactCache`):

* :class:`MemoryCache` — an in-process LRU keyed by :class:`CacheKey`.
  Artifacts are deep-copied on both ``put`` and ``get`` so a caller can
  never mutate a cached entry (reports are mutable dataclasses).
* :class:`DiskCache` — artifacts pickled under ``root/<aa>/<digest>.pkl``
  where ``digest`` is the key's SHA-256 content address; survives the
  process and is shared between processes.  Writes are atomic
  (temp-file + rename) and unreadable entries degrade to a miss.
* :class:`TieredCache` — memory in front of disk, promoting disk hits.

``get`` returns the :data:`MISS` sentinel rather than ``None`` so that
``None`` remains a cacheable artifact.  Every backend tracks hit/miss/store
counters in :class:`CacheStats`; the engine benchmark and the experiment
harness surface them (``BENCH_engine.json``, ``pipeline_cache_stats``).
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.session.fingerprint import CacheKey

__all__ = [
    "MISS",
    "ArtifactCache",
    "CacheStats",
    "DiskCache",
    "MemoryCache",
    "TieredCache",
]


class _Miss:
    """Sentinel returned by ``get`` when the key is absent."""

    _instance: Optional["_Miss"] = None

    def __new__(cls) -> "_Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


MISS = _Miss()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache backend.

    The counters are incremented through :meth:`hit` / :meth:`miss` /
    :meth:`store`, which serialize on an internal lock: cache backends are
    shared across :class:`~repro.session.executor.ThreadExecutor` workers
    and the optimization service's worker pool, and unlocked ``+= 1``
    increments would under-count there.  Reads (``as_dict``, the plain
    attributes) are intentionally lock-free — they are monotone counters
    and every consumer treats them as a snapshot.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed on disk but failed to load (truncated pickle,
    #: incompatible version, ...) and were quarantined; each also counts
    #: as a miss, so ``lookups`` stays hit+miss.
    corrupt: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def hit(self, n: int = 1) -> None:
        with self._lock:
            self.hits += n

    def miss(self, n: int = 1) -> None:
        with self._lock:
            self.misses += n

    def store(self, n: int = 1) -> None:
        with self._lock:
            self.stores += n

    def corrupted(self, n: int = 1) -> None:
        with self._lock:
            self.corrupt += n

    # the lock is per-process bookkeeping, not part of the counter state
    def __getstate__(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.hits = state.get("hits", 0)
        self.misses = state.get("misses", 0)
        self.stores = state.get("stores", 0)
        self.corrupt = state.get("corrupt", 0)
        self._lock = threading.Lock()

    def __deepcopy__(self, memo: Dict[int, object]) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.stores, self.corrupt)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Interface shared by every cache backend."""

    def __init__(self) -> None:
        self.stats = CacheStats()
        #: Fault-injection hook (see :mod:`repro.service.faults`); called
        #: with ``"cache:get"`` / ``"cache:store"`` before the respective
        #: IO in backends that support it.  ``None`` in production.
        self.fault_hook = None
        #: Telemetry hook ``(site, attrs_dict)`` — ``None`` in production.
        #: Called *after* each probe/store with the instrumentation-site
        #: name (``"cache:get"`` / ``"cache:store"``, the same strings the
        #: fault hook uses — see :mod:`repro.obs.sites`) and the probe
        #: outcome.  Strictly observational: it sees completed operations
        #: only and must not raise.
        self.trace_hook = None

    def _trace(self, site: str, **attrs: object) -> None:
        hook = self.trace_hook
        if hook is not None:
            hook(site, attrs)

    def get(self, key: CacheKey) -> object:
        """Return the cached artifact or :data:`MISS`."""

        raise NotImplementedError

    def put(self, key: CacheKey, value: object) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryCache(ArtifactCache):
    """In-process LRU artifact cache.

    Artifacts are deep-copied at both ends so cached entries are immune to
    caller mutation; for pipeline-sized artifacts (reports + code strings)
    a copy is orders of magnitude cheaper than recomputing the artifact.
    """

    def __init__(self, max_entries: Optional[int] = 1024) -> None:
        super().__init__()
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> object:
        if self.fault_hook is not None:
            self.fault_hook("cache:get")
        with self._lock:
            if key not in self._entries:
                self.stats.miss()
                self._trace("cache:get", backend="memory", outcome="miss")
                return MISS
            self._entries.move_to_end(key)
            self.stats.hit()
            value = self._entries[key]
        self._trace("cache:get", backend="memory", outcome="hit")
        return copy.deepcopy(value)

    def put(self, key: CacheKey, value: object) -> None:
        if self.fault_hook is not None:
            self.fault_hook("cache:store")
        value = copy.deepcopy(value)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.store()
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        self._trace("cache:store", backend="memory")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskCache(ArtifactCache):
    """On-disk artifact cache, content-addressed by :attr:`CacheKey.digest`."""

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: CacheKey) -> Path:
        digest = key.digest
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, key: CacheKey) -> object:
        path = self._path(key)
        if self.fault_hook is not None:
            self.fault_hook("cache:get")
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.miss()
            self._trace("cache:get", backend="disk", outcome="miss")
            return MISS
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # the entry exists but won't load — truncated by a crashed
            # writer or written by an incompatible version.  Quarantine it
            # so the next probe is a clean miss instead of re-paying the
            # failed load forever, and count it.
            self._quarantine(path)
            self.stats.corrupted()
            self.stats.miss()
            self._trace("cache:get", backend="disk", outcome="corrupt")
            return MISS
        self.stats.hit()
        self._trace("cache:get", backend="disk", outcome="hit")
        return value

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt entry off the probe path (best effort)."""

        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced removal / perms
                pass

    def put(self, key: CacheKey, value: object) -> None:
        path = self._path(key)
        if self.fault_hook is not None:
            self.fault_hook("cache:store")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.store()
        self._trace("cache:store", backend="disk")

    def clear(self) -> None:
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass


class TieredCache(ArtifactCache):
    """Memory cache in front of a disk cache; disk hits are promoted."""

    def __init__(self, memory: Optional[MemoryCache] = None,
                 disk: Optional[DiskCache] = None) -> None:
        super().__init__()
        if memory is None and disk is None:
            raise ValueError("TieredCache needs at least one backend")
        self.memory = memory
        self.disk = disk

    def get(self, key: CacheKey) -> object:
        if self.memory is not None:
            value = self.memory.get(key)
            if value is not MISS:
                self.stats.hit()
                self._trace("cache:get", backend="tiered", outcome="hit",
                            tier="memory")
                return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not MISS:
                if self.memory is not None:
                    self.memory.put(key, value)
                self.stats.hit()
                self._trace("cache:get", backend="tiered", outcome="hit",
                            tier="disk")
                return value
        self.stats.miss()
        self._trace("cache:get", backend="tiered", outcome="miss")
        return MISS

    def put(self, key: CacheKey, value: object) -> None:
        if self.memory is not None:
            self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)
        self.stats.store()
        self._trace("cache:store", backend="tiered")

    def clear(self) -> None:
        if self.memory is not None:
            self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
