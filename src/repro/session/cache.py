"""Content-addressed artifact cache for optimization sessions.

Three backends share one tiny interface (:class:`ArtifactCache`):

* :class:`MemoryCache` — an in-process LRU keyed by :class:`CacheKey`.
  Artifacts are deep-copied on both ``put`` and ``get`` so a caller can
  never mutate a cached entry (reports are mutable dataclasses).
* :class:`DiskCache` — artifacts pickled under ``root/<aa>/<digest>.pkl``
  where ``digest`` is the key's SHA-256 content address; survives the
  process and is shared between processes.  Writes are atomic
  (temp-file + rename) and unreadable entries degrade to a miss.
* :class:`TieredCache` — memory in front of disk, promoting disk hits.

``get`` returns the :data:`MISS` sentinel rather than ``None`` so that
``None`` remains a cacheable artifact.  Every backend tracks hit/miss/store
counters in :class:`CacheStats`; the engine benchmark and the experiment
harness surface them (``BENCH_engine.json``, ``pipeline_cache_stats``).
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.session.fingerprint import CacheKey

__all__ = [
    "MISS",
    "ArtifactCache",
    "CacheStats",
    "DiskCache",
    "MemoryCache",
    "TieredCache",
]


class _Miss:
    """Sentinel returned by ``get`` when the key is absent."""

    _instance: Optional["_Miss"] = None

    def __new__(cls) -> "_Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<cache MISS>"

    def __bool__(self) -> bool:
        return False


MISS = _Miss()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one cache backend."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


class ArtifactCache:
    """Interface shared by every cache backend."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: CacheKey) -> object:
        """Return the cached artifact or :data:`MISS`."""

        raise NotImplementedError

    def put(self, key: CacheKey, value: object) -> None:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class MemoryCache(ArtifactCache):
    """In-process LRU artifact cache.

    Artifacts are deep-copied at both ends so cached entries are immune to
    caller mutation; for pipeline-sized artifacts (reports + code strings)
    a copy is orders of magnitude cheaper than recomputing the artifact.
    """

    def __init__(self, max_entries: Optional[int] = 1024) -> None:
        super().__init__()
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> object:
        with self._lock:
            if key not in self._entries:
                self.stats.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            value = self._entries[key]
        return copy.deepcopy(value)

    def put(self, key: CacheKey, value: object) -> None:
        value = copy.deepcopy(value)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.stores += 1
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskCache(ArtifactCache):
    """On-disk artifact cache, content-addressed by :attr:`CacheKey.digest`."""

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, key: CacheKey) -> Path:
        digest = key.digest
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, key: CacheKey) -> object:
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError, ImportError):
            # absent, truncated, or written by an incompatible version —
            # all degrade to a miss and the artifact is recomputed
            with self._lock:
                self.stats.misses += 1
            return MISS
        with self._lock:
            self.stats.hits += 1
        return value

    def put(self, key: CacheKey, value: object) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stats.stores += 1

    def clear(self) -> None:
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                pass


class TieredCache(ArtifactCache):
    """Memory cache in front of a disk cache; disk hits are promoted."""

    def __init__(self, memory: Optional[MemoryCache] = None,
                 disk: Optional[DiskCache] = None) -> None:
        super().__init__()
        if memory is None and disk is None:
            raise ValueError("TieredCache needs at least one backend")
        self.memory = memory
        self.disk = disk

    def get(self, key: CacheKey) -> object:
        if self.memory is not None:
            value = self.memory.get(key)
            if value is not MISS:
                self.stats.hits += 1
                return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not MISS:
                if self.memory is not None:
                    self.memory.put(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return MISS

    def put(self, key: CacheKey, value: object) -> None:
        if self.memory is not None:
            self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)
        self.stats.stores += 1

    def clear(self) -> None:
        if self.memory is not None:
            self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
