"""Stable fingerprints for session cache keys.

Artifacts in the session cache are addressed by *content*, not identity:
the key of a cached stage artifact is derived from (a) the SHA-256 of the
kernel source text, (b) a canonical JSON rendering of every
:class:`~repro.saturator.config.SaturatorConfig` field, and (c) the stage
name.  Two processes (or two runs weeks apart) that feed the same source
through the same configuration therefore hit the same on-disk artifact.

Config fingerprints walk dataclass fields recursively and render enums by
value, so fields added to :class:`SaturatorConfig` in future PRs are
picked up automatically — an old cache simply misses instead of serving a
stale artifact.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import NamedTuple

__all__ = [
    "CacheKey",
    "ENGINE_SCHEMA",
    "fingerprint_config",
    "fingerprint_text",
    "stage_key",
]

#: Engine-representation tag mixed into every config fingerprint.  Bump it
#: when the e-graph core's representation or report payloads change shape
#: (e.g. the arena/interning rewrite) so artifacts pickled by an older
#: engine are never replayed into a newer one — the cache simply re-misses
#: and repopulates.  arena-v2: PR-4 report payloads grew scheduler /
#: extracted_cost fields (old pickles would lack the attributes), and the
#: new scheduler/anytime config knobs re-key every artifact anyway.
#: arena-v3: PR-5 best-result anytime codegen — anytime-enabled configs
#: may now ship the best in-loop extraction snapshot instead of the final
#: greedy extraction, so artifacts cached by the older engine must re-miss.
#: columnar-v4: PR-7 columnar e-graph core + relational e-matching — the
#: saturation outcomes are bit-identical by construction, but pickled
#: e-graph-adjacent state (column mirrors, pending buffers) changed shape,
#: so older artifacts must re-miss rather than unpickle into the new core.
ENGINE_SCHEMA = "columnar-v4"


def fingerprint_text(text: str) -> str:
    """SHA-256 hex digest of a source (or any) string."""

    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode(value: object) -> object:
    """Render *value* as JSON-stable plain data."""

    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def fingerprint_config(config: object) -> str:
    """Canonical fingerprint of a (dataclass) configuration object.

    Includes :data:`ENGINE_SCHEMA`, so disk artifacts written by a
    different engine representation miss instead of replaying.
    """

    payload = {
        "__class__": type(config).__qualname__,
        "__engine__": ENGINE_SCHEMA,
        "fields": _encode(config),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CacheKey(NamedTuple):
    """Content address of one stage artifact.

    ``extra`` carries stage-relevant context that is neither source nor
    config (e.g. the kernel name prefix, which ends up inside reports).
    """

    source_fp: str
    config_fp: str
    stage: str
    extra: str = ""

    @property
    def digest(self) -> str:
        """The flat content address used by on-disk backends."""

        joined = "\x00".join(self)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def stage_key(source: str, config: object, stage: str, extra: str = "") -> CacheKey:
    """Build the :class:`CacheKey` of one (source, config, stage) artifact."""

    return CacheKey(fingerprint_text(source), fingerprint_config(config), stage, extra)
