"""Staged optimization sessions: cached, batched whole-source optimization.

An :class:`OptimizationSession` wraps the staged pipeline
(:mod:`repro.session.stages`) with

* a **content-addressed artifact cache** (:mod:`repro.session.cache`):
  results are keyed on (source fingerprint, config fingerprint, stage,
  name prefix), so re-optimizing the same kernel under the same
  configuration — which the figure/table experiments do for every variant
  and compiler cell — is a cache hit instead of a pipeline run, and
* a **pluggable batch executor** (:mod:`repro.session.executor`): a batch
  of independent sources runs serially, on threads, or on processes.

Cache hits return artifacts equal to a cold run in everything but wall
clock; the per-kernel reports of a hit carry ``from_cache=True`` so
downstream consumers can tell the two apart.  The equivalence tests under
``tests/session`` enforce the "identical to a cold run" contract for every
variant and extractor.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.saturator.config import SaturatorConfig
from repro.saturator.report import OptimizationResult
from repro.session.cache import MISS, ArtifactCache, CacheStats
from repro.session.executor import (
    BatchExecutor,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.session.fingerprint import CacheKey, stage_key
from repro.session.stages import Stage

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.egraph.runner import CancellationToken, IterationCallback
    from repro.session.stages import FaultHook

__all__ = ["OptimizationSession"]

#: Cache-stage name of the whole-source pipeline artifact.
_RESULT_STAGE = "optimize-source"

#: A batch item: a source string, or (source, name_prefix).
SourceItem = Union[str, Tuple[str, str]]


def _split_item(item: SourceItem) -> Tuple[str, str]:
    if isinstance(item, str):
        return item, "kernel"
    source, name_prefix = item
    return source, name_prefix


def _optimize_task(args: Tuple[str, SaturatorConfig, str]) -> OptimizationResult:
    """Module-level cold-run worker so process pools can pickle it."""

    from repro.saturator.driver import optimize_source

    source, config, name_prefix = args
    return optimize_source(source, config, name_prefix)


def _cache_dir_of(cache: Optional[ArtifactCache]) -> Optional[str]:
    """Directory of the cache's disk tier, if it has one.

    Handed to process executors so their workers inherit the on-disk
    artifacts (``DiskCache.root`` directly, or ``TieredCache.disk``).
    """

    disk = getattr(cache, "disk", None) or cache
    root = getattr(disk, "root", None)
    return None if root is None else os.fspath(root)


class OptimizationSession:
    """A reusable, cache-aware context for running the staged pipeline.

    ``config`` is the default :class:`SaturatorConfig` of the session; each
    call may override it, and the cache key always reflects the config
    actually used.  ``cache`` is any :class:`ArtifactCache` (or ``None``
    for an uncached session); ``executor`` is anything accepted by
    :func:`~repro.session.executor.make_executor`.
    """

    def __init__(
        self,
        config: Optional[SaturatorConfig] = None,
        cache: Optional[ArtifactCache] = None,
        executor: Union[None, int, str, BatchExecutor] = None,
        stages: Optional[Sequence[Stage]] = None,
    ) -> None:
        self.config = config or SaturatorConfig()
        self.cache = cache
        # a process executor built from a spec inherits the session's disk
        # cache directory, so its workers share the warm artifact tier
        self.executor = make_executor(executor, cache_dir=_cache_dir_of(cache))
        self.stages = stages

    # ------------------------------------------------------------------
    # single-source entry point
    # ------------------------------------------------------------------

    def key_for(
        self, source: str, config: Optional[SaturatorConfig] = None,
        name_prefix: str = "kernel",
    ) -> CacheKey:
        """The cache key this session uses for one source+config pair."""

        return stage_key(source, config or self.config, _RESULT_STAGE, name_prefix)

    def run(
        self,
        source: str,
        config: Optional[SaturatorConfig] = None,
        name_prefix: str = "kernel",
        on_iteration: Optional["IterationCallback"] = None,
        cancellation: Optional["CancellationToken"] = None,
        fault_hook: Optional["FaultHook"] = None,
        tracer=None,
        trace_parent=None,
    ) -> OptimizationResult:
        """Optimize *source*, reusing a cached artifact when one exists.

        ``on_iteration`` streams per-iteration saturation progress from a
        cold run (see :class:`~repro.egraph.runner.Runner`); a cache hit
        returns immediately and never fires it.  ``cancellation`` threads
        a deadline/cancel token into the saturation loop (see
        :meth:`run_detailed` for the degradation contract).
        """

        return self.run_detailed(
            source, config, name_prefix, on_iteration,
            cancellation=cancellation, fault_hook=fault_hook,
            tracer=tracer, trace_parent=trace_parent,
        )[0]

    def run_detailed(
        self,
        source: str,
        config: Optional[SaturatorConfig] = None,
        name_prefix: str = "kernel",
        on_iteration: Optional["IterationCallback"] = None,
        cancellation: Optional["CancellationToken"] = None,
        fault_hook: Optional["FaultHook"] = None,
        tracer=None,
        trace_parent=None,
    ) -> Tuple[OptimizationResult, bool]:
        """Like :meth:`run`, but also reports whether the cache served it.

        The boolean is authoritative even for artifacts without kernels
        (whose reports carry no ``from_cache`` flags) — the optimization
        service's hit/run accounting depends on that.

        A run whose deadline tripped mid-saturation may return a
        **degraded** result (``result.degraded``) built from the anytime
        snapshot; degraded artifacts are *never* stored in the cache, so
        they can't shadow the full artifact a later unconstrained run
        produces.

        ``tracer``/``trace_parent`` thread a :class:`repro.obs.Tracer`
        into a cold run.  Like ``on_iteration``, the tracer is strictly
        observational: it is not part of the cache key, and traced and
        untraced runs produce byte-identical artifacts.
        """

        config = config or self.config
        if self.cache is None:
            return (
                self._cold(
                    source, config, name_prefix, on_iteration,
                    cancellation, fault_hook, tracer, trace_parent,
                ),
                False,
            )
        key = self.key_for(source, config, name_prefix)
        hit = self.cache.get(key)
        if hit is not MISS:
            return self._mark_cached(hit), True
        result = self._cold(
            source, config, name_prefix, on_iteration, cancellation,
            fault_hook, tracer, trace_parent,
        )
        if not result.degraded:
            self.cache.put(key, result)
        return result, False

    # ------------------------------------------------------------------
    # batch entry point
    # ------------------------------------------------------------------

    def run_many(
        self,
        items: Iterable[SourceItem],
        config: Optional[SaturatorConfig] = None,
    ) -> List[OptimizationResult]:
        """Optimize a batch of sources through the session executor.

        Cached artifacts are returned directly; only cold items are
        submitted to the executor.  Results come back in input order, and
        cold results are stored so later batches (and :meth:`run`) hit.
        """

        config = config or self.config
        items = [_split_item(item) for item in items]
        results: List[Optional[OptimizationResult]] = [None] * len(items)

        cold: List[Tuple[int, str, str]] = []
        for index, (source, name_prefix) in enumerate(items):
            if self.cache is not None:
                hit = self.cache.get(self.key_for(source, config, name_prefix))
                if hit is not MISS:
                    results[index] = self._mark_cached(hit)
                    continue
            cold.append((index, source, name_prefix))

        if cold:
            if self.stages is None:
                computed = self.executor.map(
                    _optimize_task,
                    [(source, config, name_prefix) for _, source, name_prefix in cold],
                )
            else:
                # custom stage lists are closures over live objects; keep
                # them in-process (serial/threads both work, processes
                # would need to pickle the stage instances)
                if isinstance(self.executor, ProcessExecutor):
                    raise ValueError(
                        "run_many with a custom stage list cannot use a "
                        "process executor (stage instances live in this "
                        "process); use a serial or thread executor"
                    )
                computed = self.executor.map(
                    lambda args: self._cold(*args),
                    [(source, config, name_prefix) for _, source, name_prefix in cold],
                )
            for (index, source, name_prefix), result in zip(cold, computed):
                if self.cache is not None:
                    self.cache.put(self.key_for(source, config, name_prefix), result)
                results[index] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> Optional[CacheStats]:
        """Hit/miss counters of the session cache (None when uncached)."""

        return None if self.cache is None else self.cache.stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _cold(
        self,
        source: str,
        config: SaturatorConfig,
        name_prefix: str,
        on_iteration: Optional["IterationCallback"] = None,
        cancellation: Optional["CancellationToken"] = None,
        fault_hook: Optional["FaultHook"] = None,
        tracer=None,
        trace_parent=None,
    ) -> OptimizationResult:
        from repro.saturator.driver import optimize_source

        return optimize_source(
            source, config, name_prefix, stages=self.stages,
            on_iteration=on_iteration,
            cancellation=cancellation,
            fault_hook=fault_hook,
            tracer=tracer,
            trace_parent=trace_parent,
        )

    @staticmethod
    def _mark_cached(result: OptimizationResult) -> OptimizationResult:
        for kernel in result.kernels:
            kernel.from_cache = True
        return result
