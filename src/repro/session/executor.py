"""Pluggable batch executors for independent kernel sessions.

The experiment harness and the CLI evaluate many independent units of work
(kernels of a benchmark, input files of an ``accsat`` invocation).  A
:class:`BatchExecutor` abstracts how such a batch runs:

* :class:`SerialExecutor` — a plain loop; the default, and the reference
  the equivalence tests compare parallel results against.
* :class:`ThreadExecutor` — a thread pool.  Kernels share one process, so
  they also share the in-memory artifact cache and the compiled-pattern
  caches; best when cache hits dominate.
* :class:`ProcessExecutor` — a process pool for CPU-bound cold runs.  The
  mapped callable and its arguments must be picklable (use module-level
  functions).  Workers inherit the **disk cache tier**: with a
  ``cache_dir`` (explicit, or from ``REPRO_CACHE_DIR``), every worker's
  initializer exports the directory and rebinds the experiment harness's
  pipeline cache onto it, so fleet workers hit warm on-disk artifacts
  instead of re-running cold pipelines.

``map`` always returns results **in input order** regardless of completion
order, so parallel evaluation is output-identical to serial evaluation.
:func:`make_executor` parses the CLI/Env spellings: ``serial``,
``threads[:N]``, ``processes[:N]``, or a bare integer (thread count).

When a pool worker process dies mid-batch (OOM kill, segfault, SIGKILL),
``concurrent.futures`` surfaces an untyped ``BrokenProcessPool``; ``map``
wraps it in :class:`ExecutorBrokenError`, which records how many results
from the **front of the batch** had already completed so callers can
report or resume partial work instead of discarding the whole batch.
"""

from __future__ import annotations

import concurrent.futures
import os
import sys
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar, Union

__all__ = [
    "BatchExecutor",
    "ExecutorBrokenError",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


class ExecutorBrokenError(RuntimeError):
    """The executor's pool broke mid-batch (a worker process died).

    Raised in place of the raw ``concurrent.futures`` ``BrokenExecutor`` /
    ``BrokenProcessPool`` so callers catch one typed error.  ``completed``
    is the number of results from the **front of the batch** that were
    collected before the break — because ``map`` gathers results in input
    order, items ``[0, completed)`` are known good and a caller may resume
    from item ``completed`` instead of redoing everything.
    """

    def __init__(self, message: str, completed: int = 0) -> None:
        super().__init__(message)
        self.completed = completed


class BatchExecutor:
    """Maps a callable over a batch, preserving input order."""

    kind: str = "batch"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialExecutor(BatchExecutor):
    """Run the batch in the calling thread, one item at a time."""

    kind = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        return [fn(item) for item in items]


class _PoolExecutor(BatchExecutor):
    """Shared implementation of the two ``concurrent.futures`` backends."""

    _pool_cls = concurrent.futures.ThreadPoolExecutor

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=jobs if jobs is not None else _default_jobs())

    def _pool_kwargs(self) -> Dict[str, object]:
        """Extra keyword arguments for the pool constructor."""

        return {}

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        with self._pool_cls(max_workers=workers, **self._pool_kwargs()) as pool:
            futures = [pool.submit(fn, item) for item in items]
            results: List[_R] = []
            try:
                for future in futures:
                    results.append(future.result())
            except concurrent.futures.BrokenExecutor as error:
                for future in futures:
                    future.cancel()
                raise ExecutorBrokenError(
                    f"executor pool broke after {len(results)} of "
                    f"{len(items)} results: {error or type(error).__name__}",
                    completed=len(results),
                ) from error
            return results


class ThreadExecutor(_PoolExecutor):
    """Run the batch on a thread pool (shares in-process caches)."""

    kind = "threads"
    _pool_cls = concurrent.futures.ThreadPoolExecutor


def _worker_cache_init(cache_dir: str) -> None:
    """Process-pool worker initializer: adopt the parent's disk cache tier.

    Exports ``REPRO_CACHE_DIR`` so harness modules imported later in the
    worker read the shared directory, and — when the experiment harness is
    already imported (the fork start method copies the parent's modules) —
    rebinds its pipeline cache onto the directory unless it is already
    backed by it (rebinding would needlessly drop a warm memory tier).
    """

    os.environ["REPRO_CACHE_DIR"] = cache_dir
    common = sys.modules.get("repro.experiments.common")
    if common is None:
        return
    cache = getattr(common, "_PIPELINE_CACHE", None)
    disk = getattr(cache, "disk", None)
    root = getattr(disk, "root", None)
    if root is not None and os.path.abspath(os.fspath(root)) == os.path.abspath(cache_dir):
        return
    common.configure_pipeline_cache(cache_dir=cache_dir)


class ProcessExecutor(_PoolExecutor):
    """Run the batch on a process pool (callable/args must pickle).

    ``cache_dir`` (default: the ``REPRO_CACHE_DIR`` environment variable,
    resolved at ``map`` time) is handed to every worker through a pool
    initializer — see :func:`_worker_cache_init` — so process fleets share
    the content-addressed disk artifacts instead of starting cold.
    """

    kind = "processes"
    _pool_cls = concurrent.futures.ProcessPoolExecutor

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Union[None, str, "os.PathLike"] = None,
    ) -> None:
        super().__init__(jobs)
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None

    def _pool_kwargs(self) -> Dict[str, object]:
        cache_dir = self.cache_dir or os.environ.get("REPRO_CACHE_DIR")
        if cache_dir:
            return {
                "initializer": _worker_cache_init,
                "initargs": (cache_dir,),
            }
        return {}


def make_executor(
    spec: Union[None, int, str, BatchExecutor] = None,
    cache_dir: Union[None, str, "os.PathLike"] = None,
) -> BatchExecutor:
    """Build an executor from a CLI-style spec.

    ``None``, ``"serial"`` and ``1`` mean serial; an integer ``N > 1``
    means ``N`` threads; ``"threads[:N]"`` / ``"processes[:N]"`` select the
    pool type explicitly (``N`` defaults to the CPU count).  ``cache_dir``
    is forwarded to a :class:`ProcessExecutor` so its workers inherit the
    disk cache tier; other executor kinds ignore it (threads and serial
    already share the in-process cache).  An existing
    :class:`BatchExecutor` passes through unchanged.
    """

    if isinstance(spec, BatchExecutor):
        return spec
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, int):
        return SerialExecutor() if spec == 1 else ThreadExecutor(spec)
    text = spec.strip().lower()
    name, _, count = text.partition(":")
    if not text or name == "serial":
        return SerialExecutor()
    jobs: Optional[int] = None
    if count:
        jobs = int(count)
        if jobs < 1:
            raise ValueError(f"invalid job count in executor spec {spec!r}")
    if name == "threads":
        return ThreadExecutor(jobs) if jobs != 1 else SerialExecutor()
    if name == "processes":
        return ProcessExecutor(jobs, cache_dir=cache_dir) if jobs != 1 else SerialExecutor()
    if name.isdigit():
        return make_executor(int(name))
    raise ValueError(
        f"unknown executor spec {spec!r}; expected serial, threads[:N], "
        f"processes[:N] or an integer"
    )
