"""Pluggable batch executors for independent kernel sessions.

The experiment harness and the CLI evaluate many independent units of work
(kernels of a benchmark, input files of an ``accsat`` invocation).  A
:class:`BatchExecutor` abstracts how such a batch runs:

* :class:`SerialExecutor` — a plain loop; the default, and the reference
  the equivalence tests compare parallel results against.
* :class:`ThreadExecutor` — a thread pool.  Kernels share one process, so
  they also share the in-memory artifact cache and the compiled-pattern
  caches; best when cache hits dominate.
* :class:`ProcessExecutor` — a process pool for CPU-bound cold runs.  The
  mapped callable and its arguments must be picklable (use module-level
  functions), and per-process caches start cold.

``map`` always returns results **in input order** regardless of completion
order, so parallel evaluation is output-identical to serial evaluation.
:func:`make_executor` parses the CLI/Env spellings: ``serial``,
``threads[:N]``, ``processes[:N]``, or a bare integer (thread count).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

__all__ = [
    "BatchExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


class BatchExecutor:
    """Maps a callable over a batch, preserving input order."""

    kind: str = "batch"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} jobs={self.jobs}>"


class SerialExecutor(BatchExecutor):
    """Run the batch in the calling thread, one item at a time."""

    kind = "serial"

    def __init__(self) -> None:
        super().__init__(jobs=1)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        return [fn(item) for item in items]


class _PoolExecutor(BatchExecutor):
    """Shared implementation of the two ``concurrent.futures`` backends."""

    _pool_cls = concurrent.futures.ThreadPoolExecutor

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=jobs if jobs is not None else _default_jobs())

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> List[_R]:
        items = list(items)
        if len(items) <= 1 or self.jobs == 1:
            return [fn(item) for item in items]
        workers = min(self.jobs, len(items))
        with self._pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class ThreadExecutor(_PoolExecutor):
    """Run the batch on a thread pool (shares in-process caches)."""

    kind = "threads"
    _pool_cls = concurrent.futures.ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Run the batch on a process pool (callable/args must pickle)."""

    kind = "processes"
    _pool_cls = concurrent.futures.ProcessPoolExecutor


def make_executor(
    spec: Union[None, int, str, BatchExecutor] = None
) -> BatchExecutor:
    """Build an executor from a CLI-style spec.

    ``None``, ``"serial"`` and ``1`` mean serial; an integer ``N > 1``
    means ``N`` threads; ``"threads[:N]"`` / ``"processes[:N]"`` select the
    pool type explicitly (``N`` defaults to the CPU count).  An existing
    :class:`BatchExecutor` passes through unchanged.
    """

    if isinstance(spec, BatchExecutor):
        return spec
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, int):
        return SerialExecutor() if spec == 1 else ThreadExecutor(spec)
    text = spec.strip().lower()
    name, _, count = text.partition(":")
    if not text or name == "serial":
        return SerialExecutor()
    jobs: Optional[int] = None
    if count:
        jobs = int(count)
        if jobs < 1:
            raise ValueError(f"invalid job count in executor spec {spec!r}")
    if name == "threads":
        return ThreadExecutor(jobs) if jobs != 1 else SerialExecutor()
    if name == "processes":
        return ProcessExecutor(jobs) if jobs != 1 else SerialExecutor()
    if name.isdigit():
        return make_executor(int(name))
    raise ValueError(
        f"unknown executor spec {spec!r}; expected serial, threads[:N], "
        f"processes[:N] or an integer"
    )
