"""ACC Saturator reproduction.

A from-scratch Python implementation of *ACC Saturator: Automatic Kernel
Optimization for Directive-Based GPU Code* (SC 2024): equality saturation
over OpenACC/OpenMP C kernels, plus every substrate the paper's evaluation
depends on (C frontend, SSA, e-graph engine, extraction, code generation,
a reference interpreter, an analytic GPU/compiler performance model, and
the NPB / SPEC ACCEL benchmark kernels).

Typical use::

    from repro import optimize_source, SaturatorConfig

    result = optimize_source(kernel_c_source, SaturatorConfig())
    print(result.code)

The heavyweight subpackages are imported lazily so that ``import repro``
stays cheap and so that low-level substrates (``repro.frontend``,
``repro.egraph`` ...) can be used independently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__version__ = "1.0.0"

#: Names re-exported lazily from :mod:`repro.saturator`.
_SATURATOR_EXPORTS = (
    "OptimizationResult",
    "SaturatorConfig",
    "Variant",
    "optimize_kernel",
    "optimize_source",
)

__all__ = list(_SATURATOR_EXPORTS) + ["__version__"]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.saturator import (  # noqa: F401
        OptimizationResult,
        SaturatorConfig,
        Variant,
        optimize_kernel,
        optimize_source,
    )


def __getattr__(name: str):
    """Lazily expose the high-level pipeline API at the package root."""

    if name in _SATURATOR_EXPORTS:
        from repro import saturator

        return getattr(saturator, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
