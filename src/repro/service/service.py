"""The long-lived concurrent optimization service.

:class:`OptimizationService` puts a job queue, a thread-based worker pool,
and in-flight request coalescing in front of an
:class:`~repro.session.OptimizationSession`:

* **submit/poll/stream** — :meth:`OptimizationService.submit` returns a
  :class:`~repro.service.job.JobHandle` immediately; callers poll its
  state, block on ``result()``, or iterate ``stream()`` for per-iteration
  saturation progress (jobs whose config enables anytime extraction
  stream ``extracted_cost`` snapshots).
* **coalescing** — submissions are keyed by the session cache key
  (source SHA-256, config fingerprint, name prefix).  A submission whose
  key matches a queued or running job *attaches* to it instead of
  enqueueing: N identical concurrent requests cost one pipeline run, and
  because the run's artifact lands in the shared cache, later identical
  submissions are plain cache hits.
* **accounting** — a :class:`~repro.service.stats.ServiceStats` registry
  tracks submissions, coalesce/cache-hit/pipeline-run counts, terminal
  outcomes, and the queued/running gauges; ``stats.snapshot()`` is cheap
  and consistent, suitable for a metrics endpoint.

The fault-tolerance layer (PR 6) adds four defenses:

* **deadlines** — ``OptimizationRequest.deadline`` seconds after
  submission, the job's :class:`~repro.egraph.runner.CancellationToken`
  trips: a still-queued job fails with
  :class:`~repro.service.errors.JobDeadlineError` at pickup; a running
  one stops saturating at the next iteration boundary and **degrades
  gracefully** — extraction/codegen finish from the best anytime snapshot
  and the job resolves with a ``degraded=True`` artifact (byte-identical
  to a plateau stop at the same boundary, and never stored in the shared
  artifact cache).  With no snapshot the job fails with
  ``JobDeadlineError``.
* **backpressure + load shedding** — a bounded queue (``max_queue``) plus
  an ``overload_policy``: ``"block"`` (wait for space, optionally bounded
  by ``submit_timeout``), ``"reject"``
  (:class:`~repro.service.errors.ServiceOverloadedError`), or ``"shed"``
  (evict the worst queued job — lowest priority, then newest — to admit
  the new one; an incoming submission worse than every queued job is
  itself rejected).
* **retry with backoff** — transient failures (``OSError`` /
  :class:`~repro.service.errors.TransientError`) requeue the job with a
  capped, deterministic exponential backoff up to ``max_retries``;
  permanent errors fail fast; a worker hitting an unexpected error fails
  only its job and keeps serving.
* **fault injection** — a :class:`~repro.service.faults.FaultPlan` arms
  the no-op hooks along the serving path for deterministic chaos testing.

Workers run plain :meth:`OptimizationSession.run`, so everything the
session guarantees — deterministic artifacts, hit-equals-cold-run
equivalence, thread-safe cache tiers — carries over; the service adds
concurrency, ordering (priorities), and single-flight semantics on top.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from itertools import count
from typing import Dict, List, Optional, Tuple, Union

from repro.egraph.runner import CancellationToken, FileTripSignal, StopReason
from repro.obs.metrics import MetricsRegistry
from repro.saturator.config import SaturatorConfig
from repro.saturator.report import OptimizationResult
from repro.service.errors import (
    JobDeadlineError,
    ServiceOverloadedError,
    TransientError,
    WorkerDiedError,
    is_transient,
)
from repro.service.faults import FaultPlan
from repro.service.job import Job, JobHandle, JobState, OptimizationRequest, ProgressEvent
from repro.service.procpool import ProcessWorkerPool, WorkerTask
from repro.service.queue import JobQueue
from repro.service.stats import ServiceStats
from repro.session.cache import MISS, ArtifactCache, MemoryCache
from repro.session.fingerprint import CacheKey
from repro.session.session import OptimizationSession, _cache_dir_of
from repro.session.stages import DeadlineExceeded, SaturationCancelled

__all__ = ["OptimizationService"]

#: Accepted ``overload_policy`` spellings (the long form is the ISSUE's).
_POLICIES = {
    "block": "block",
    "reject": "reject",
    "shed": "shed",
    "shed-oldest-lowest-priority": "shed",
}

#: Accepted ``executor`` spellings.
_EXECUTORS = ("thread", "process")


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class OptimizationService:
    """A concurrent, coalescing, fault-tolerant front-end over a session.

    ``session`` supplies the cache and configuration defaults; when
    omitted, one is built from ``config``/``cache`` (an in-memory cache by
    default, so identical *sequential* submissions hit even without
    coalescing).  ``workers`` sizes the thread pool; ``coalesce=False``
    disables in-flight deduplication (every submission enqueues its own
    job — the load-test harness uses this as the baseline).

    Fault-tolerance knobs:

    * ``max_queue`` bounds the number of queued (not-yet-running) jobs;
      ``overload_policy`` decides what a full queue does to ``submit``
      (``"block"``/``"reject"``/``"shed"``, see the module docstring) and
      ``submit_timeout`` bounds the ``block`` wait (``None`` = forever —
      note a blocked submit on a never-started service waits until a
      worker frees space, so start the service first).
    * ``max_retries`` retries transient failures with exponential backoff
      ``retry_backoff * 2**(attempt-1)`` seconds, capped at
      ``retry_backoff_cap``.
    * ``faults`` arms a :class:`~repro.service.faults.FaultPlan` on the
      serving path (cache, stages, worker pickup, progress publish).

    The execution backend (PR 8):

    * ``executor="thread"`` (default) runs pipelines on the worker threads
      themselves, exactly as before.  ``executor="process"`` turns the
      worker threads into dispatchers over a supervised
      :class:`~repro.service.procpool.ProcessWorkerPool`: cold pipelines
      run in spawned worker processes (sharing the session's disk cache
      tier when it has one), worker death is detected, classified
      transient, and recovered through the retry path, and
      deadlines/cancellation cross the process boundary via per-job
      :class:`~repro.egraph.runner.FileTripSignal` trip files — the PR 6
      degradation contract holds unchanged under both executors.
    * ``heartbeat_timeout`` (process executor only) kills and replaces a
      busy worker silent for that many seconds — hangs become transient
      worker deaths.  ``None`` disables it.

    The service can be used as a context manager::

        with OptimizationService(workers=4) as service:
            handle = service.submit(source)
            result = handle.result()

    Jobs may be submitted before :meth:`start`; they queue up and run once
    the workers exist (tests use this to make coalescing deterministic).
    """

    def __init__(
        self,
        session: Optional[OptimizationSession] = None,
        config: Optional[SaturatorConfig] = None,
        cache: Optional[ArtifactCache] = None,
        workers: Optional[int] = None,
        coalesce: bool = True,
        max_queue: Optional[int] = None,
        overload_policy: str = "block",
        submit_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        faults: Optional[FaultPlan] = None,
        executor: str = "thread",
        heartbeat_timeout: Optional[float] = None,
        tracer=None,
    ) -> None:
        if session is not None and (config is not None or cache is not None):
            raise ValueError("pass either a session or config/cache, not both")
        if session is None:
            session = OptimizationSession(
                config=config, cache=MemoryCache() if cache is None else cache
            )
        self.session = session
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if overload_policy not in _POLICIES:
            raise ValueError(
                f"unknown overload_policy {overload_policy!r}; "
                f"expected one of {sorted(_POLICIES)}"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {_EXECUTORS}"
            )
        self.executor = executor
        self.heartbeat_timeout = heartbeat_timeout
        self._pool: Optional[ProcessWorkerPool] = None
        self._trip_dir: Optional[str] = None
        self.coalesce = coalesce
        self.overload_policy = _POLICIES[overload_policy]
        self.submit_timeout = submit_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.faults = faults
        self.stats = ServiceStats()
        self._queue = JobQueue(max_depth=max_queue)
        self._lock = threading.Lock()
        #: The in-flight registry has its own lock: workers must be able to
        #: drop a finished job (and thereby pop the next one, freeing a
        #: queue slot) while a ``block``-policy submit holds ``_lock``
        #: waiting for exactly that slot.  Order: ``_lock`` may wrap
        #: ``_inflight_lock``; never the reverse, and workers take only
        #: the latter.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[CacheKey, Job] = {}
        self._jobs: List[Job] = []
        self._seq = count()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        if faults is not None and session.cache is not None:
            # arm the cache sites (every tier of a TieredCache does its
            # own IO, so each gets the hook); stage/publish/pickup sites
            # are armed per-job in the worker loop
            for tier in (
                session.cache,
                getattr(session.cache, "memory", None),
                getattr(session.cache, "disk", None),
            ):
                if tier is not None:
                    tier.fault_hook = faults.fire
        #: Strictly observational telemetry (PR 10).  ``tracer`` is an
        #: optional :class:`repro.obs.Tracer`; ``metrics`` always exists —
        #: it adapts every counter surface (ServiceStats, CacheStats, the
        #: fault plan's injection counts, the tracer's own counters, plus
        #: phase-time histograms and per-rule counters observed from
        #: completed runs) behind one deterministic ``snapshot()``, the
        #: payload ``accsat serve --report`` emits.
        self.tracer = tracer
        self.metrics = MetricsRegistry()
        self.metrics.add_source("service", self.stats.snapshot)
        if session.cache is not None:
            self.metrics.add_source("cache", session.cache.stats.as_dict)
        if faults is not None:
            self.metrics.add_source("faults", faults.injected)
        if tracer is not None:
            self.metrics.add_source("telemetry", tracer.counts)
            # cache probes become trace events parented (via the per-
            # attempt bind) to the job that issued them
            session.cache.trace_hook = tracer.hook
            if faults is not None:
                # every fault verdict — raising or structural — surfaces
                # as a trace event automatically (the observer runs under
                # the per-attempt bind, so it lands on the right span)
                def _fault_event(site, rule, key, hit):
                    tracer.event(
                        "fault:injected", site=site, kind=rule.kind, hit=hit
                    )

                faults.on_inject = _fault_event

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OptimizationService":
        """Spawn the worker threads (idempotent).

        With ``executor="process"`` this also spawns the supervised worker
        processes (one per worker thread, so a dispatcher never waits for
        a lease) and the per-job trip-file directory.
        """

        with self._lock:
            if self._stopped:
                raise RuntimeError("service was stopped; build a new one")
            if self._started:
                return self
            self._started = True
            if self.executor == "process":
                self._trip_dir = tempfile.mkdtemp(prefix="repro-service-trips-")
                self._pool = ProcessWorkerPool(
                    workers=self.workers,
                    cache_dir=_cache_dir_of(self.session.cache),
                    heartbeat_timeout=self.heartbeat_timeout,
                    stats=self.stats,
                ).start()
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-service-{index}", daemon=True
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut down: close the queue, optionally cancel what never ran.

        The queue closes **first** (under the registry lock — ``submit``
        holds the same lock from its closed-check through the push, so a
        racing submission either lands fully before the close or is
        rejected up front, never stranded half-registered); only then does
        ``cancel_pending`` sweep the still-queued jobs, so the sweep
        cannot miss a submission that slipped past the stop.  Without
        ``cancel_pending`` the workers drain the queue before exiting.
        ``wait`` blocks until the worker threads have terminated.
        """

        with self._lock:
            self._queue.close()
            self._stopped = True
            threads = list(self._threads)
        if cancel_pending:
            for job in self.jobs():
                if job.state is JobState.QUEUED:
                    for handle in list(job.handles):
                        handle.cancel()
        if wait:
            for thread in threads:
                thread.join()
            # the dispatchers are gone, so no lease is outstanding: the
            # worker processes and the trip files can go too
            if self._pool is not None:
                self._pool.stop()
            if self._trip_dir is not None:
                shutil.rmtree(self._trip_dir, ignore_errors=True)
                self._trip_dir = None

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(wait=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Union[str, OptimizationRequest],
        config: Optional[SaturatorConfig] = None,
        priority: int = 0,
        name_prefix: str = "kernel",
        deadline: Optional[float] = None,
    ) -> JobHandle:
        """Enqueue one optimization request; returns its handle.

        *request* is an :class:`OptimizationRequest` or a bare source
        string (then ``config``/``priority``/``name_prefix``/``deadline``
        apply).  An identical in-flight request — same session cache key —
        is joined rather than re-enqueued when coalescing is on (the
        follower shares the primary's deadline).

        Raises :class:`~repro.service.errors.ServiceOverloadedError` when
        the queue is full and the overload policy refuses the submission;
        a refused submission is counted in ``rejected`` (not
        ``submitted``) and owns no job.
        """

        if isinstance(request, str):
            request = OptimizationRequest(
                request, config, priority, name_prefix, deadline
            )
        elif config is not None:
            raise ValueError("config is part of the OptimizationRequest")
        key = self.session.key_for(
            request.source, request.config, request.name_prefix
        )
        with self._lock:
            if self._queue.closed:
                raise RuntimeError("service is stopped")
            if self.coalesce:
                # get+attach under the registry lock: a worker's
                # drop-then-resolve either happens after the attach (the
                # handle is counted in the job's outcome) or before the
                # get (the registry misses and a fresh job hits the cache)
                with self._inflight_lock:
                    job = self._inflight.get(key)
                    handle = job.attach() if job is not None else None
                if handle is not None:
                    self.stats.count("submitted")
                    self.stats.count("coalesced")
                    if self.tracer is not None:
                        self.tracer.event(
                            "job:coalesce", span=job.span,
                            followers=len(job.handles),
                        )
                    return handle
            seq = next(self._seq)
            if self._queue.full and self.overload_policy != "block":
                # may shed a victim to make room, or raise — before the
                # new job is registered anywhere, so rejection needs no
                # rollback
                self._admit_under_load(request, seq)
            job = Job(request, key, seq=seq, stats=self.stats)
            if self.tracer is not None:
                job.span = self.tracer.span(
                    "job", seq=seq, key=key.digest[:12],
                    priority=request.priority,
                    name_prefix=request.name_prefix,
                )
            # every job gets a token (deadline or not) so running jobs
            # are always cooperatively cancellable
            job.cancellation = CancellationToken(timeout=request.deadline)
            job.on_cancelled = self._job_cancelled
            with self._inflight_lock:
                self._inflight[key] = job
            self._jobs.append(job)
            handle = job.attach()
            assert handle is not None  # fresh job, cannot be cancelled yet
            timeout = self.submit_timeout if self.overload_policy == "block" else None
            if not self._queue.push(job, timeout=timeout):
                # block policy timed out waiting for space: unwind as if
                # the submission never happened
                with self._inflight_lock:
                    if self._inflight.get(key) is job:
                        del self._inflight[key]
                self._jobs.remove(job)
                self.stats.count("rejected")
                if job.span is not None:
                    job.span.end(terminal="cancelled", reason="submit-timeout")
                raise ServiceOverloadedError(
                    f"no queue space within {self.submit_timeout!r}s "
                    f"(max_depth={self._queue.max_depth})"
                )
            self.stats.count("submitted")
            self.stats.job_queued()
        return handle

    def submit_many(
        self,
        requests: List[Union[str, OptimizationRequest]],
    ) -> List[JobHandle]:
        """Submit a batch; handles come back in input order."""

        return [self.submit(request) for request in requests]

    def _admit_under_load(self, request: OptimizationRequest, seq: int) -> None:
        """Make room for (or refuse) a submission at a full queue.

        Called under the registry lock.  ``reject`` raises outright;
        ``shed`` evicts the worst queued job — **lowest priority, then
        newest submission** — unless the incoming request is itself the
        worst, in which case it is rejected (shedding older, better work
        for it would invert the policy).
        """

        if self.overload_policy == "reject":
            self.stats.count("rejected")
            raise ServiceOverloadedError(
                f"queue is full (max_depth={self._queue.max_depth})"
            )
        while self._queue.full:
            victim = self._queue.worst_queued()
            if victim is None:
                return  # a worker drained the queue between the checks
            if (victim.request.priority, victim.seq) < (request.priority, seq):
                self.stats.count("rejected")
                raise ServiceOverloadedError(
                    "submission shed on arrival: lowest priority at a full queue"
                )
            if not self._queue.steal(victim):
                continue  # a worker popped it first; re-check the depth
            with self._inflight_lock:
                if self._inflight.get(victim.key) is victim:
                    del self._inflight[victim.key]
            outcomes = victim.live_handles
            victim.fail(
                ServiceOverloadedError(
                    "job shed under load: queue full and a newer submission "
                    "outranked it"
                )
            )
            if self.tracer is not None:
                self.tracer.event("job:shed", span=victim.span)
            self._end_job_span(victim, "failed", reason="shed")
            self.stats.count("shed")
            self.stats.count("failed", outcomes)
            self.stats.job_dequeued()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def jobs(self) -> List[Job]:
        """Snapshot of every job ever enqueued (coalesced ones excluded)."""

        with self._lock:
            return list(self._jobs)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal; False on timeout.

        The service must be started (or be about to start) for this to
        return — queued jobs only make progress on worker threads.
        """

        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            with job.cond:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                if not job.cond.wait_for(lambda: job.state.terminal, remaining):
                    return False
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _job_cancelled(self, job: Job) -> None:
        """A queued job lost its last live handle: free its queue slot and
        drop it from the in-flight registry."""

        self._queue.discard(job)
        self._drop_inflight(job)
        self._end_job_span(job, "cancelled")

    def _end_job_span(self, job: Job, terminal: str, **attrs) -> None:
        """End the job's span with its terminal state (idempotent: only
        the first terminal transition emits the end record)."""

        span = job.span
        if span is not None:
            # close the running attempt (if any) first: terminal
            # transitions happen mid-attempt, and the job span must
            # outlive its children for the trace to nest.  Span.end is
            # idempotent, so the attempt wrapper's own end is a no-op.
            attempt = job.attempt_span
            if attempt is not None:
                attempt.end()
            span.end(terminal=terminal, retries=job.retries, **attrs)

    def _drop_inflight(self, job: Job) -> None:
        # registry lock only: this runs on worker threads, which must
        # never need ``_lock`` (a blocked ``block``-policy submit holds it
        # while waiting for the very slot this drop leads to freeing)
        with self._inflight_lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _fail_job(self, job: Job, error: BaseException) -> None:
        """Fail *job* (failure isolation: its own handles, nothing else)."""

        self._drop_inflight(job)
        outcomes = job.live_handles
        job.fail(error)
        self._end_job_span(job, "failed", error=type(error).__name__)
        self.stats.count("failed", outcomes)

    def _backoff(self, attempt: int) -> float:
        """Deterministic capped exponential backoff for retry *attempt*."""

        return min(self.retry_backoff_cap, self.retry_backoff * 2 ** (attempt - 1))

    def _worker(self) -> None:
        while True:
            job = self._queue.pop()
            if job is None:
                return
            token = job.cancellation
            if (
                token is not None
                and token.tripped() is not None
                and job.state is JobState.QUEUED
            ):
                # expired (or token-cancelled) while waiting in the queue:
                # never start a job that cannot finish in time
                self._drop_inflight(job)
                outcomes = job.live_handles
                job.fail(
                    JobDeadlineError("deadline expired before the job started")
                )
                self._end_job_span(job, "failed", reason="queued-expiry")
                self.stats.job_dequeued()
                self.stats.count("expired")
                self.stats.count("failed", outcomes)
                continue
            if not job.start():
                continue  # cancelled between push and pop
            self.stats.job_started()
            try:
                self._run_job(job)
            except Exception as error:  # pragma: no cover - defensive
                # an unexpected error in the serving machinery itself must
                # fail only this job; the worker survives to keep serving
                self._drop_inflight(job)
                if not job.state.terminal:
                    outcomes = job.live_handles
                    job.fail(error)
                    self._end_job_span(job, "failed", error=type(error).__name__)
                    self.stats.count("failed", outcomes)
            finally:
                self.stats.job_finished()

    def _run_job(self, job: Job) -> None:
        """Run one attempt of *job*, under an ``attempt`` span when traced.

        The attempt span is **bound** to the worker thread for the
        duration of the attempt, so instrumentation that cannot thread an
        explicit parent — shared-cache probes, fault-injection verdicts —
        parents its events to the right attempt automatically.  Each
        retry gets a fresh attempt span under the same job span, which is
        also where a process worker's ingested spans re-parent.
        """

        tracer = self.tracer
        if tracer is None:
            return self._run_attempt(job)
        attempt_span = tracer.span(
            "attempt", parent=job.span,
            attempt=job.retries, executor=self.executor,
        )
        job.attempt_span = attempt_span
        try:
            with tracer.bind(attempt_span):
                return self._run_attempt(job)
        finally:
            attempt_span.end()
            job.attempt_span = None

    def _run_attempt(self, job: Job) -> None:
        plan = self.faults

        def publish(row) -> None:  # row: repro.egraph.runner.IterationReport
            if plan is not None:
                plan.fire("progress:publish")
            event = ProgressEvent(
                seq=job.event_seq,
                iteration=row.index,
                applied=row.applied,
                egraph_nodes=row.egraph_nodes,
                egraph_classes=row.egraph_classes,
                extracted_cost=row.extracted_cost,
            )
            # the seq counter lives on the job so events stay uniquely
            # numbered across retry attempts (streams replay, never shrink)
            job.event_seq += 1
            job.publish(event)
            self.stats.count("progress_events")

        try:
            result, from_cache = self._execute(job, publish, plan)
        except SaturationCancelled:
            # every handle detached and the token stopped the loop at an
            # iteration boundary; late coalescers (attached after the trip)
            # are carried to CANCELLED with the job
            self._drop_inflight(job)
            stragglers = job.cancel_run()
            self._end_job_span(job, "cancelled")
            if stragglers:
                self.stats.count("cancelled", stragglers)
            return
        except DeadlineExceeded as error:
            # tripped mid-run with no anytime snapshot: nothing correct to
            # degrade to, so the deadline is a (permanent) failure
            self.stats.count("expired")
            self._fail_job(job, JobDeadlineError(str(error)))
            return
        except Exception as error:
            if (
                is_transient(error)
                and job.retries < self.max_retries
                and not self._queue.closed
            ):
                job.retries += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "job:retry", span=job.span,
                        attempt=job.retries,
                        backoff=self._backoff(job.retries),
                        error=type(error).__name__,
                        worker_death=isinstance(error, WorkerDiedError),
                    )
                if job.requeue():
                    self.stats.count("retried")
                    self.stats.job_requeued()
                    time.sleep(self._backoff(job.retries))
                    try:
                        # force: the service accepted this job once; a full
                        # queue must never lose it on the way back in
                        self._queue.push(job, force=True)
                    except RuntimeError:
                        # stopped while backing off — fail with the cause
                        self.stats.job_dequeued()
                        self._fail_job(job, error)
                    return
            self._fail_job(job, error)
            return
        if job.retries:
            self.stats.count("recovered")
        if result.degraded:
            self.stats.count("degraded")
            if self.tracer is not None:
                self.tracer.event("job:degraded", span=job.span)
        self.stats.count("cache_hits" if from_cache else "pipeline_runs")
        self._observe_result(result, from_cache)
        # leave the in-flight registry *before* resolving: a submission
        # racing with completion either attaches (and shares this result)
        # or misses the registry and hits the artifact cache — never both
        self._drop_inflight(job)
        outcomes = job.live_handles
        job.resolve(result, from_cache)
        self._end_job_span(
            job, "done", from_cache=from_cache, degraded=result.degraded,
        )
        self.stats.count("completed", outcomes)

    def _observe_result(self, result: OptimizationResult, from_cache: bool) -> None:
        """Feed a completed cold run's phase times and per-rule counters
        into the metrics registry (cache hits carry stale copies)."""

        if from_cache:
            return
        metrics = self.metrics
        for kernel in result.kernels:
            runner = kernel.runner
            if runner is None:
                continue
            for phase, seconds in runner.phase_times.items():
                metrics.histogram(f"phase:{phase}").observe(seconds)
            for name, rule in runner.rule_stats.items():
                metrics.counter(f"rule:{name}:matches").inc(rule.matches)
                metrics.counter(f"rule:{name}:applied").inc(rule.applied)

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------

    def _execute(
        self, job: Job, publish, plan: Optional[FaultPlan]
    ) -> Tuple[OptimizationResult, bool]:
        """Run one attempt of *job* on the configured backend."""

        request = job.request
        tracer = self.tracer
        trace_parent = (
            None if tracer is None else tracer.current_id()
        )
        if plan is None:
            if self._pool is None:
                return self.session.run_detailed(
                    request.source,
                    request.config,
                    request.name_prefix,
                    on_iteration=publish,
                    cancellation=job.cancellation,
                    tracer=tracer,
                    trace_parent=trace_parent,
                )
            return self._dispatch(job, publish, plan, crash_after=None)
        with plan.scoped(job):
            plan.fire("worker:pickup")
            # the crash site is checked under BOTH executors so per-job
            # hit counts (and thus the whole fault pattern) are identical
            # whichever backend runs the wave
            crash_rules = plan.check("worker:crash")
            crash_after = min((r.after for r in crash_rules), default=None)
            if self._pool is None:
                if crash_rules:
                    # no process to kill: simulate the death as a
                    # pickup-time transient so the job still takes the
                    # orphan-recovery path
                    self.stats.count("worker_deaths")
                    raise WorkerDiedError(
                        "injected worker crash (thread executor: simulated "
                        "as a pickup-time death)"
                    )
                return self.session.run_detailed(
                    request.source,
                    request.config,
                    request.name_prefix,
                    on_iteration=publish,
                    cancellation=job.cancellation,
                    fault_hook=plan.fire,
                    tracer=tracer,
                    trace_parent=trace_parent,
                )
            return self._dispatch(job, publish, plan, crash_after)

    def _dispatch(
        self,
        job: Job,
        publish,
        plan: Optional[FaultPlan],
        crash_after: Optional[int],
    ) -> Tuple[OptimizationResult, bool]:
        """One attempt on the process pool: probe the parent cache, ship
        the job to a worker, relay progress, store the artifact.

        The parent-side cache probe keeps hit/coalescing semantics (and
        the ``cache:get`` fault site) identical to the thread path; on a
        miss the child runs the pipeline against its own session — warm
        via the shared disk tier when the service cache has one — and the
        non-degraded artifact is stored parent-side so memory-only caches
        work too.  Degraded artifacts are never stored on either side.
        """

        assert self._pool is not None
        request = job.request
        cache = self.session.cache
        if cache is not None:
            hit = cache.get(job.key)
            if hit is not MISS:
                return OptimizationSession._mark_cached(hit), True
        token = job.cancellation
        timeout = None
        trip_path = None
        if token is not None:
            if token.signal is None and self._trip_dir is not None:
                # one trip file per job (not per attempt): a trip is
                # irrevocable, and retries of a tripped job must stay
                # tripped
                signal = FileTripSignal(
                    os.path.join(self._trip_dir, f"job-{job.seq}.trip")
                )
                token.signal = signal
                reason = token.tripped()
                if reason is not None:
                    # cancel()/expire() raced the attach: propagate the
                    # trip into the file the child is about to watch
                    signal.trip(
                        "cancelled"
                        if reason is StopReason.CANCELLED
                        else "deadline"
                    )
            if isinstance(token.signal, FileTripSignal):
                trip_path = token.signal.path
            if token.deadline is not None:
                # monotonic instants don't cross process boundaries:
                # re-anchor the deadline as remaining seconds at dispatch
                timeout = max(0.0, token.deadline - time.monotonic())
        tracer = self.tracer
        task = WorkerTask(
            task_id=f"{job.seq}.{job.retries}",
            source=request.source,
            config=request.config or self.session.config,
            name_prefix=request.name_prefix,
            timeout=timeout,
            trip_path=trip_path,
            crash_after=crash_after,
            trace=tracer is not None,
        )
        if tracer is None:
            on_spans = None
        else:
            # re-parent the child's record stream under this attempt's
            # span, offset to the attempt's start — the child rebased its
            # timestamps to its own first record, and its whole run falls
            # inside the dispatch→terminal window this span covers, so
            # the ingested spans nest and a process-executor trace reads
            # identically to a thread-executor one
            attempt = tracer.current()
            attempt_id = getattr(attempt, "span_id", attempt)
            attempt_start = getattr(attempt, "start", 0.0)

            def on_spans(records):
                tracer.ingest(records, parent=attempt_id, offset=attempt_start)

        result, from_cache = self._pool.run_job(task, publish, on_spans)
        if plan is not None and plan.check("ipc:result-drop"):
            raise TransientError(
                f"result of task {task.task_id} dropped in IPC (injected)"
            )
        if cache is not None and not result.degraded:
            cache.put(job.key, result)
        return result, from_cache
