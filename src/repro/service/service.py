"""The long-lived concurrent optimization service.

:class:`OptimizationService` puts a job queue, a thread-based worker pool,
and in-flight request coalescing in front of an
:class:`~repro.session.OptimizationSession`:

* **submit/poll/stream** — :meth:`OptimizationService.submit` returns a
  :class:`~repro.service.job.JobHandle` immediately; callers poll its
  state, block on ``result()``, or iterate ``stream()`` for per-iteration
  saturation progress (jobs whose config enables anytime extraction
  stream ``extracted_cost`` snapshots).
* **coalescing** — submissions are keyed by the session cache key
  (source SHA-256, config fingerprint, name prefix).  A submission whose
  key matches a queued or running job *attaches* to it instead of
  enqueueing: N identical concurrent requests cost one pipeline run, and
  because the run's artifact lands in the shared cache, later identical
  submissions are plain cache hits.
* **accounting** — a :class:`~repro.service.stats.ServiceStats` registry
  tracks submissions, coalesce/cache-hit/pipeline-run counts, terminal
  outcomes, and the queued/running gauges; ``stats.snapshot()`` is cheap
  and consistent, suitable for a metrics endpoint.

Workers run plain :meth:`OptimizationSession.run`, so everything the
session guarantees — deterministic artifacts, hit-equals-cold-run
equivalence, thread-safe cache tiers — carries over; the service adds
concurrency, ordering (priorities), and single-flight semantics on top.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Union

from repro.saturator.config import SaturatorConfig
from repro.service.job import Job, JobHandle, JobState, OptimizationRequest, ProgressEvent
from repro.service.queue import JobQueue
from repro.service.stats import ServiceStats
from repro.session.cache import ArtifactCache, MemoryCache
from repro.session.fingerprint import CacheKey
from repro.session.session import OptimizationSession

__all__ = ["OptimizationService"]


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class OptimizationService:
    """A concurrent, coalescing front-end over an optimization session.

    ``session`` supplies the cache and configuration defaults; when
    omitted, one is built from ``config``/``cache`` (an in-memory cache by
    default, so identical *sequential* submissions hit even without
    coalescing).  ``workers`` sizes the thread pool; ``coalesce=False``
    disables in-flight deduplication (every submission enqueues its own
    job — the load-test harness uses this as the baseline).

    The service can be used as a context manager::

        with OptimizationService(workers=4) as service:
            handle = service.submit(source)
            result = handle.result()

    Jobs may be submitted before :meth:`start`; they queue up and run once
    the workers exist (tests use this to make coalescing deterministic).
    """

    def __init__(
        self,
        session: Optional[OptimizationSession] = None,
        config: Optional[SaturatorConfig] = None,
        cache: Optional[ArtifactCache] = None,
        workers: Optional[int] = None,
        coalesce: bool = True,
    ) -> None:
        if session is not None and (config is not None or cache is not None):
            raise ValueError("pass either a session or config/cache, not both")
        if session is None:
            session = OptimizationSession(
                config=config, cache=MemoryCache() if cache is None else cache
            )
        self.session = session
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.coalesce = coalesce
        self.stats = ServiceStats()
        self._queue = JobQueue()
        self._lock = threading.Lock()
        self._inflight: Dict[CacheKey, Job] = {}
        self._jobs: List[Job] = []
        self._seq = itertools.count()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OptimizationService":
        """Spawn the worker threads (idempotent)."""

        with self._lock:
            if self._stopped:
                raise RuntimeError("service was stopped; build a new one")
            if self._started:
                return self
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-service-{index}", daemon=True
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut down: close the queue, optionally cancel what never ran.

        With ``cancel_pending`` every still-queued job is cancelled;
        otherwise the workers drain the queue before exiting.  ``wait``
        blocks until the worker threads have terminated.
        """

        if cancel_pending:
            for job in self.jobs():
                if job.state is JobState.QUEUED:
                    for handle in list(job.handles):
                        handle.cancel()
        # close under the registry lock: submit() holds it from its
        # closed-check through push(), so a submission either lands fully
        # before the close or is rejected up front — never half-registered
        with self._lock:
            self._queue.close()
            self._stopped = True
            threads = list(self._threads)
        if wait:
            for thread in threads:
                thread.join()

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(wait=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Union[str, OptimizationRequest],
        config: Optional[SaturatorConfig] = None,
        priority: int = 0,
        name_prefix: str = "kernel",
    ) -> JobHandle:
        """Enqueue one optimization request; returns its handle.

        *request* is an :class:`OptimizationRequest` or a bare source
        string (then ``config``/``priority``/``name_prefix`` apply).  An
        identical in-flight request — same session cache key — is joined
        rather than re-enqueued when coalescing is on.
        """

        if isinstance(request, str):
            request = OptimizationRequest(request, config, priority, name_prefix)
        elif config is not None:
            raise ValueError("config is part of the OptimizationRequest")
        key = self.session.key_for(
            request.source, request.config, request.name_prefix
        )
        with self._lock:
            if self._queue.closed:
                raise RuntimeError("service is stopped")
            self.stats.count("submitted")
            if self.coalesce:
                job = self._inflight.get(key)
                if job is not None:
                    handle = job.attach()
                    if handle is not None:
                        self.stats.count("coalesced")
                        return handle
            job = Job(request, key, seq=next(self._seq), stats=self.stats)
            job.on_cancelled = self._job_cancelled
            self._inflight[key] = job
            self._jobs.append(job)
            handle = job.attach()
            assert handle is not None  # fresh job, cannot be cancelled yet
            self._queue.push(job)
            self.stats.job_queued()
        return handle

    def submit_many(
        self,
        requests: List[Union[str, OptimizationRequest]],
    ) -> List[JobHandle]:
        """Submit a batch; handles come back in input order."""

        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def jobs(self) -> List[Job]:
        """Snapshot of every job ever enqueued (coalesced ones excluded)."""

        with self._lock:
            return list(self._jobs)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal; False on timeout.

        The service must be started (or be about to start) for this to
        return — queued jobs only make progress on worker threads.
        """

        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            with job.cond:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                if not job.cond.wait_for(lambda: job.state.terminal, remaining):
                    return False
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _job_cancelled(self, job: Job) -> None:
        """A queued job lost its last live handle: drop it from inflight."""

        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _worker(self) -> None:
        while True:
            job = self._queue.pop()
            if job is None:
                return
            if not job.start():
                continue  # cancelled between push and pop
            self.stats.job_started()
            try:
                self._run_job(job)
            finally:
                self.stats.job_finished()

    def _run_job(self, job: Job) -> None:
        seq = itertools.count()

        def publish(row) -> None:  # row: repro.egraph.runner.IterationReport
            job.publish(
                ProgressEvent(
                    seq=next(seq),
                    iteration=row.index,
                    applied=row.applied,
                    egraph_nodes=row.egraph_nodes,
                    egraph_classes=row.egraph_classes,
                    extracted_cost=row.extracted_cost,
                )
            )
            self.stats.count("progress_events")

        request = job.request
        try:
            result, from_cache = self.session.run_detailed(
                request.source,
                request.config,
                request.name_prefix,
                on_iteration=publish,
            )
        except Exception as error:
            # failure isolation: one bad source fails its own handles and
            # nothing else; the worker survives to take the next job
            with self._lock:
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
            outcomes = job.live_handles
            job.fail(error)
            self.stats.count("failed", outcomes)
            return
        self.stats.count("cache_hits" if from_cache else "pipeline_runs")
        # leave the in-flight registry *before* resolving: a submission
        # racing with completion either attaches (and shares this result)
        # or misses the registry and hits the artifact cache — never both
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        outcomes = job.live_handles
        job.resolve(result, from_cache)
        self.stats.count("completed", outcomes)
