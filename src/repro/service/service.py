"""The long-lived concurrent optimization service.

:class:`OptimizationService` puts a job queue, a thread-based worker pool,
and in-flight request coalescing in front of an
:class:`~repro.session.OptimizationSession`:

* **submit/poll/stream** — :meth:`OptimizationService.submit` returns a
  :class:`~repro.service.job.JobHandle` immediately; callers poll its
  state, block on ``result()``, or iterate ``stream()`` for per-iteration
  saturation progress (jobs whose config enables anytime extraction
  stream ``extracted_cost`` snapshots).
* **coalescing** — submissions are keyed by the session cache key
  (source SHA-256, config fingerprint, name prefix).  A submission whose
  key matches a queued or running job *attaches* to it instead of
  enqueueing: N identical concurrent requests cost one pipeline run, and
  because the run's artifact lands in the shared cache, later identical
  submissions are plain cache hits.
* **accounting** — a :class:`~repro.service.stats.ServiceStats` registry
  tracks submissions, coalesce/cache-hit/pipeline-run counts, terminal
  outcomes, and the queued/running gauges; ``stats.snapshot()`` is cheap
  and consistent, suitable for a metrics endpoint.

The fault-tolerance layer (PR 6) adds four defenses:

* **deadlines** — ``OptimizationRequest.deadline`` seconds after
  submission, the job's :class:`~repro.egraph.runner.CancellationToken`
  trips: a still-queued job fails with
  :class:`~repro.service.errors.JobDeadlineError` at pickup; a running
  one stops saturating at the next iteration boundary and **degrades
  gracefully** — extraction/codegen finish from the best anytime snapshot
  and the job resolves with a ``degraded=True`` artifact (byte-identical
  to a plateau stop at the same boundary, and never stored in the shared
  artifact cache).  With no snapshot the job fails with
  ``JobDeadlineError``.
* **backpressure + load shedding** — a bounded queue (``max_queue``) plus
  an ``overload_policy``: ``"block"`` (wait for space, optionally bounded
  by ``submit_timeout``), ``"reject"``
  (:class:`~repro.service.errors.ServiceOverloadedError`), or ``"shed"``
  (evict the worst queued job — lowest priority, then newest — to admit
  the new one; an incoming submission worse than every queued job is
  itself rejected).
* **retry with backoff** — transient failures (``OSError`` /
  :class:`~repro.service.errors.TransientError`) requeue the job with a
  capped, deterministic exponential backoff up to ``max_retries``;
  permanent errors fail fast; a worker hitting an unexpected error fails
  only its job and keeps serving.
* **fault injection** — a :class:`~repro.service.faults.FaultPlan` arms
  the no-op hooks along the serving path for deterministic chaos testing.

Workers run plain :meth:`OptimizationSession.run`, so everything the
session guarantees — deterministic artifacts, hit-equals-cold-run
equivalence, thread-safe cache tiers — carries over; the service adds
concurrency, ordering (priorities), and single-flight semantics on top.
"""

from __future__ import annotations

import os
import threading
import time
from itertools import count
from typing import Dict, List, Optional, Union

from repro.egraph.runner import CancellationToken
from repro.saturator.config import SaturatorConfig
from repro.service.errors import (
    JobDeadlineError,
    ServiceOverloadedError,
    is_transient,
)
from repro.service.faults import FaultPlan
from repro.service.job import Job, JobHandle, JobState, OptimizationRequest, ProgressEvent
from repro.service.queue import JobQueue
from repro.service.stats import ServiceStats
from repro.session.cache import ArtifactCache, MemoryCache
from repro.session.fingerprint import CacheKey
from repro.session.session import OptimizationSession
from repro.session.stages import DeadlineExceeded, SaturationCancelled

__all__ = ["OptimizationService"]

#: Accepted ``overload_policy`` spellings (the long form is the ISSUE's).
_POLICIES = {
    "block": "block",
    "reject": "reject",
    "shed": "shed",
    "shed-oldest-lowest-priority": "shed",
}


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class OptimizationService:
    """A concurrent, coalescing, fault-tolerant front-end over a session.

    ``session`` supplies the cache and configuration defaults; when
    omitted, one is built from ``config``/``cache`` (an in-memory cache by
    default, so identical *sequential* submissions hit even without
    coalescing).  ``workers`` sizes the thread pool; ``coalesce=False``
    disables in-flight deduplication (every submission enqueues its own
    job — the load-test harness uses this as the baseline).

    Fault-tolerance knobs:

    * ``max_queue`` bounds the number of queued (not-yet-running) jobs;
      ``overload_policy`` decides what a full queue does to ``submit``
      (``"block"``/``"reject"``/``"shed"``, see the module docstring) and
      ``submit_timeout`` bounds the ``block`` wait (``None`` = forever —
      note a blocked submit on a never-started service waits until a
      worker frees space, so start the service first).
    * ``max_retries`` retries transient failures with exponential backoff
      ``retry_backoff * 2**(attempt-1)`` seconds, capped at
      ``retry_backoff_cap``.
    * ``faults`` arms a :class:`~repro.service.faults.FaultPlan` on the
      serving path (cache, stages, worker pickup, progress publish).

    The service can be used as a context manager::

        with OptimizationService(workers=4) as service:
            handle = service.submit(source)
            result = handle.result()

    Jobs may be submitted before :meth:`start`; they queue up and run once
    the workers exist (tests use this to make coalescing deterministic).
    """

    def __init__(
        self,
        session: Optional[OptimizationSession] = None,
        config: Optional[SaturatorConfig] = None,
        cache: Optional[ArtifactCache] = None,
        workers: Optional[int] = None,
        coalesce: bool = True,
        max_queue: Optional[int] = None,
        overload_policy: str = "block",
        submit_timeout: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 1.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if session is not None and (config is not None or cache is not None):
            raise ValueError("pass either a session or config/cache, not both")
        if session is None:
            session = OptimizationSession(
                config=config, cache=MemoryCache() if cache is None else cache
            )
        self.session = session
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if overload_policy not in _POLICIES:
            raise ValueError(
                f"unknown overload_policy {overload_policy!r}; "
                f"expected one of {sorted(_POLICIES)}"
            )
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.coalesce = coalesce
        self.overload_policy = _POLICIES[overload_policy]
        self.submit_timeout = submit_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.faults = faults
        self.stats = ServiceStats()
        self._queue = JobQueue(max_depth=max_queue)
        self._lock = threading.Lock()
        #: The in-flight registry has its own lock: workers must be able to
        #: drop a finished job (and thereby pop the next one, freeing a
        #: queue slot) while a ``block``-policy submit holds ``_lock``
        #: waiting for exactly that slot.  Order: ``_lock`` may wrap
        #: ``_inflight_lock``; never the reverse, and workers take only
        #: the latter.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[CacheKey, Job] = {}
        self._jobs: List[Job] = []
        self._seq = count()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        if faults is not None and session.cache is not None:
            # arm the cache sites (every tier of a TieredCache does its
            # own IO, so each gets the hook); stage/publish/pickup sites
            # are armed per-job in the worker loop
            for tier in (
                session.cache,
                getattr(session.cache, "memory", None),
                getattr(session.cache, "disk", None),
            ):
                if tier is not None:
                    tier.fault_hook = faults.fire

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OptimizationService":
        """Spawn the worker threads (idempotent)."""

        with self._lock:
            if self._stopped:
                raise RuntimeError("service was stopped; build a new one")
            if self._started:
                return self
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-service-{index}", daemon=True
                )
                self._threads.append(thread)
                thread.start()
        return self

    def stop(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut down: close the queue, optionally cancel what never ran.

        The queue closes **first** (under the registry lock — ``submit``
        holds the same lock from its closed-check through the push, so a
        racing submission either lands fully before the close or is
        rejected up front, never stranded half-registered); only then does
        ``cancel_pending`` sweep the still-queued jobs, so the sweep
        cannot miss a submission that slipped past the stop.  Without
        ``cancel_pending`` the workers drain the queue before exiting.
        ``wait`` blocks until the worker threads have terminated.
        """

        with self._lock:
            self._queue.close()
            self._stopped = True
            threads = list(self._threads)
        if cancel_pending:
            for job in self.jobs():
                if job.state is JobState.QUEUED:
                    for handle in list(job.handles):
                        handle.cancel()
        if wait:
            for thread in threads:
                thread.join()

    def __enter__(self) -> "OptimizationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop(wait=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(
        self,
        request: Union[str, OptimizationRequest],
        config: Optional[SaturatorConfig] = None,
        priority: int = 0,
        name_prefix: str = "kernel",
        deadline: Optional[float] = None,
    ) -> JobHandle:
        """Enqueue one optimization request; returns its handle.

        *request* is an :class:`OptimizationRequest` or a bare source
        string (then ``config``/``priority``/``name_prefix``/``deadline``
        apply).  An identical in-flight request — same session cache key —
        is joined rather than re-enqueued when coalescing is on (the
        follower shares the primary's deadline).

        Raises :class:`~repro.service.errors.ServiceOverloadedError` when
        the queue is full and the overload policy refuses the submission;
        a refused submission is counted in ``rejected`` (not
        ``submitted``) and owns no job.
        """

        if isinstance(request, str):
            request = OptimizationRequest(
                request, config, priority, name_prefix, deadline
            )
        elif config is not None:
            raise ValueError("config is part of the OptimizationRequest")
        key = self.session.key_for(
            request.source, request.config, request.name_prefix
        )
        with self._lock:
            if self._queue.closed:
                raise RuntimeError("service is stopped")
            if self.coalesce:
                # get+attach under the registry lock: a worker's
                # drop-then-resolve either happens after the attach (the
                # handle is counted in the job's outcome) or before the
                # get (the registry misses and a fresh job hits the cache)
                with self._inflight_lock:
                    job = self._inflight.get(key)
                    handle = job.attach() if job is not None else None
                if handle is not None:
                    self.stats.count("submitted")
                    self.stats.count("coalesced")
                    return handle
            seq = next(self._seq)
            if self._queue.full and self.overload_policy != "block":
                # may shed a victim to make room, or raise — before the
                # new job is registered anywhere, so rejection needs no
                # rollback
                self._admit_under_load(request, seq)
            job = Job(request, key, seq=seq, stats=self.stats)
            # every job gets a token (deadline or not) so running jobs
            # are always cooperatively cancellable
            job.cancellation = CancellationToken(timeout=request.deadline)
            job.on_cancelled = self._job_cancelled
            with self._inflight_lock:
                self._inflight[key] = job
            self._jobs.append(job)
            handle = job.attach()
            assert handle is not None  # fresh job, cannot be cancelled yet
            timeout = self.submit_timeout if self.overload_policy == "block" else None
            if not self._queue.push(job, timeout=timeout):
                # block policy timed out waiting for space: unwind as if
                # the submission never happened
                with self._inflight_lock:
                    if self._inflight.get(key) is job:
                        del self._inflight[key]
                self._jobs.remove(job)
                self.stats.count("rejected")
                raise ServiceOverloadedError(
                    f"no queue space within {self.submit_timeout!r}s "
                    f"(max_depth={self._queue.max_depth})"
                )
            self.stats.count("submitted")
            self.stats.job_queued()
        return handle

    def submit_many(
        self,
        requests: List[Union[str, OptimizationRequest]],
    ) -> List[JobHandle]:
        """Submit a batch; handles come back in input order."""

        return [self.submit(request) for request in requests]

    def _admit_under_load(self, request: OptimizationRequest, seq: int) -> None:
        """Make room for (or refuse) a submission at a full queue.

        Called under the registry lock.  ``reject`` raises outright;
        ``shed`` evicts the worst queued job — **lowest priority, then
        newest submission** — unless the incoming request is itself the
        worst, in which case it is rejected (shedding older, better work
        for it would invert the policy).
        """

        if self.overload_policy == "reject":
            self.stats.count("rejected")
            raise ServiceOverloadedError(
                f"queue is full (max_depth={self._queue.max_depth})"
            )
        while self._queue.full:
            victim = self._queue.worst_queued()
            if victim is None:
                return  # a worker drained the queue between the checks
            if (victim.request.priority, victim.seq) < (request.priority, seq):
                self.stats.count("rejected")
                raise ServiceOverloadedError(
                    "submission shed on arrival: lowest priority at a full queue"
                )
            if not self._queue.steal(victim):
                continue  # a worker popped it first; re-check the depth
            with self._inflight_lock:
                if self._inflight.get(victim.key) is victim:
                    del self._inflight[victim.key]
            outcomes = victim.live_handles
            victim.fail(
                ServiceOverloadedError(
                    "job shed under load: queue full and a newer submission "
                    "outranked it"
                )
            )
            self.stats.count("shed")
            self.stats.count("failed", outcomes)
            self.stats.job_dequeued()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def jobs(self) -> List[Job]:
        """Snapshot of every job ever enqueued (coalesced ones excluded)."""

        with self._lock:
            return list(self._jobs)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal; False on timeout.

        The service must be started (or be about to start) for this to
        return — queued jobs only make progress on worker threads.
        """

        deadline = None if timeout is None else time.monotonic() + timeout
        for job in self.jobs():
            with job.cond:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                if not job.cond.wait_for(lambda: job.state.terminal, remaining):
                    return False
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _job_cancelled(self, job: Job) -> None:
        """A queued job lost its last live handle: free its queue slot and
        drop it from the in-flight registry."""

        self._queue.discard(job)
        self._drop_inflight(job)

    def _drop_inflight(self, job: Job) -> None:
        # registry lock only: this runs on worker threads, which must
        # never need ``_lock`` (a blocked ``block``-policy submit holds it
        # while waiting for the very slot this drop leads to freeing)
        with self._inflight_lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _fail_job(self, job: Job, error: BaseException) -> None:
        """Fail *job* (failure isolation: its own handles, nothing else)."""

        self._drop_inflight(job)
        outcomes = job.live_handles
        job.fail(error)
        self.stats.count("failed", outcomes)

    def _backoff(self, attempt: int) -> float:
        """Deterministic capped exponential backoff for retry *attempt*."""

        return min(self.retry_backoff_cap, self.retry_backoff * 2 ** (attempt - 1))

    def _worker(self) -> None:
        while True:
            job = self._queue.pop()
            if job is None:
                return
            token = job.cancellation
            if (
                token is not None
                and token.tripped() is not None
                and job.state is JobState.QUEUED
            ):
                # expired (or token-cancelled) while waiting in the queue:
                # never start a job that cannot finish in time
                self._drop_inflight(job)
                outcomes = job.live_handles
                job.fail(
                    JobDeadlineError("deadline expired before the job started")
                )
                self.stats.job_dequeued()
                self.stats.count("expired")
                self.stats.count("failed", outcomes)
                continue
            if not job.start():
                continue  # cancelled between push and pop
            self.stats.job_started()
            try:
                self._run_job(job)
            except Exception as error:  # pragma: no cover - defensive
                # an unexpected error in the serving machinery itself must
                # fail only this job; the worker survives to keep serving
                self._drop_inflight(job)
                if not job.state.terminal:
                    outcomes = job.live_handles
                    job.fail(error)
                    self.stats.count("failed", outcomes)
            finally:
                self.stats.job_finished()

    def _run_job(self, job: Job) -> None:
        plan = self.faults

        def publish(row) -> None:  # row: repro.egraph.runner.IterationReport
            if plan is not None:
                plan.fire("progress:publish")
            event = ProgressEvent(
                seq=job.event_seq,
                iteration=row.index,
                applied=row.applied,
                egraph_nodes=row.egraph_nodes,
                egraph_classes=row.egraph_classes,
                extracted_cost=row.extracted_cost,
            )
            # the seq counter lives on the job so events stay uniquely
            # numbered across retry attempts (streams replay, never shrink)
            job.event_seq += 1
            job.publish(event)
            self.stats.count("progress_events")

        request = job.request
        try:
            if plan is not None:
                with plan.scoped(job):
                    plan.fire("worker:pickup")
                    result, from_cache = self.session.run_detailed(
                        request.source,
                        request.config,
                        request.name_prefix,
                        on_iteration=publish,
                        cancellation=job.cancellation,
                        fault_hook=plan.fire,
                    )
            else:
                result, from_cache = self.session.run_detailed(
                    request.source,
                    request.config,
                    request.name_prefix,
                    on_iteration=publish,
                    cancellation=job.cancellation,
                )
        except SaturationCancelled:
            # every handle detached and the token stopped the loop at an
            # iteration boundary; late coalescers (attached after the trip)
            # are carried to CANCELLED with the job
            self._drop_inflight(job)
            stragglers = job.cancel_run()
            if stragglers:
                self.stats.count("cancelled", stragglers)
            return
        except DeadlineExceeded as error:
            # tripped mid-run with no anytime snapshot: nothing correct to
            # degrade to, so the deadline is a (permanent) failure
            self.stats.count("expired")
            self._fail_job(job, JobDeadlineError(str(error)))
            return
        except Exception as error:
            if (
                is_transient(error)
                and job.retries < self.max_retries
                and not self._queue.closed
            ):
                job.retries += 1
                if job.requeue():
                    self.stats.count("retried")
                    self.stats.job_requeued()
                    time.sleep(self._backoff(job.retries))
                    try:
                        # force: the service accepted this job once; a full
                        # queue must never lose it on the way back in
                        self._queue.push(job, force=True)
                    except RuntimeError:
                        # stopped while backing off — fail with the cause
                        self.stats.job_dequeued()
                        self._fail_job(job, error)
                    return
            self._fail_job(job, error)
            return
        if job.retries:
            self.stats.count("recovered")
        if result.degraded:
            self.stats.count("degraded")
        self.stats.count("cache_hits" if from_cache else "pipeline_runs")
        # leave the in-flight registry *before* resolving: a submission
        # racing with completion either attaches (and shares this result)
        # or misses the registry and hits the artifact cache — never both
        self._drop_inflight(job)
        outcomes = job.live_handles
        job.resolve(result, from_cache)
        self.stats.count("completed", outcomes)
