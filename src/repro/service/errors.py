"""Typed errors of the fault-tolerant serving layer.

The service classifies every job failure into exactly one of two buckets:

* **transient** — the attempt may succeed if simply repeated: ``OSError``
  (disk-cache IO, the classic production flake) and anything raised as a
  :class:`TransientError` (which is also what the fault-injection harness
  raises for its ``"transient"`` kind).  Transient failures are retried
  with capped exponential backoff up to the service's ``max_retries``.
* **permanent** — retrying cannot help: parse errors, pipeline bugs,
  :class:`JobDeadlineError`, :class:`InjectedFault`.  These fail fast.

:func:`is_transient` is the single classification point; the worker loop
consults nothing else.
"""

from __future__ import annotations

__all__ = [
    "InjectedFault",
    "JobDeadlineError",
    "ServiceError",
    "ServiceOverloadedError",
    "TransientError",
    "WorkerDiedError",
    "is_transient",
]


class ServiceError(RuntimeError):
    """Base class of every serving-layer error."""


class ServiceOverloadedError(ServiceError):
    """The queue is at ``max_depth`` and the overload policy refused the
    submission (``reject``), shed it as the load-shedding victim, or the
    ``block`` policy timed out waiting for space."""


class JobDeadlineError(ServiceError):
    """A job's deadline expired with nothing correct to return — either
    before the job ever started, or mid-saturation with no anytime
    snapshot to degrade to.  Permanent: retrying an expired job cannot
    un-expire it."""


class TransientError(ServiceError):
    """A retryable failure.  Raise (or wrap a cause in) this to tell the
    service the attempt may succeed if repeated; the deterministic fault
    harness raises it for its ``"transient"`` kind."""


class WorkerDiedError(TransientError):
    """A worker process died (or its result was lost in IPC) while running
    a job.  The attempt tells the service nothing about the job itself —
    the same work may well succeed on a respawned worker — so worker death
    is *transient* by construction: the supervisor raises this to route
    the orphaned job through the standard retry/backoff path."""


class InjectedFault(ServiceError):
    """A *permanent* injected fault (fault-harness kind ``"permanent"``).

    Deliberately not transient so chaos tests can drive the fail-fast
    path; it subclasses :class:`ServiceError`, never ``OSError``.
    """


def is_transient(error: BaseException) -> bool:
    """True when the worker loop should retry the failed attempt."""

    return isinstance(error, (TransientError, OSError))
