"""Deterministic fault injection for the optimization service.

A :class:`FaultPlan` decides, at named **sites** along the serving path,
whether to inject a failure.  The sites are no-op hooks in production
(``None`` everywhere) and cost one attribute check when armed:

==================== =====================================================
site                 where it fires
==================== =====================================================
``cache:get``        artifact-cache lookup (``MemoryCache``/``DiskCache``)
``cache:store``      artifact-cache store
``stage:<name>``     before each pipeline stage (``stage:saturate``, ...)
``worker:pickup``    a worker picked the job up, before the pipeline runs
``progress:publish`` before each per-iteration progress event
``worker:crash``     at dispatch of an attempt (process backend): decides
                     whether — and after how many iterations — the worker
                     process hard-exits (``os._exit``) mid-job
``ipc:result-drop``  on receipt of a child worker's result: decides
                     whether the parent discards it (simulating a result
                     lost in IPC after the child already finished)
==================== =====================================================

Determinism is the whole point: every counter and RNG stream is keyed by
``(site, job key)`` — *not* by global arrival order — so which attempt of
which job faults is a pure function of the plan (seed + rules) and the
job's identity, independent of worker interleaving.  A fixed seed
therefore reproduces the exact same fault pattern, failure set, and
service stats on every run; the chaos test suite and the
``run_service_bench.py --faults`` mode both assert on that.

Five fault kinds:

* ``"transient"`` — raises :class:`~repro.service.errors.TransientError`
  (the service retries with backoff),
* ``"permanent"`` — raises :class:`~repro.service.errors.InjectedFault`
  (the service fails the job fast),
* ``"deadline"`` — calls ``expire()`` on the running job's
  :class:`~repro.egraph.runner.CancellationToken`, tripping its deadline
  at the next iteration boundary (degradation path) without touching the
  wall clock,
* ``"crash"`` / ``"drop"`` — **structural** kinds: :meth:`FaultPlan.fire`
  only counts them; the process-worker supervisor consumes their verdicts
  through the non-raising :meth:`FaultPlan.check` at its deterministic
  decision points (dispatch and result receipt) and performs the kill /
  drop itself.  ``FaultRule.after`` picks the kill boundary for a crash:
  the worker publishes that many iterations, then hard-exits.  Under the
  thread executor a ``crash`` verdict is simulated as a pickup-time
  :class:`~repro.service.errors.WorkerDiedError` (there is no process to
  kill), keeping per-job attempt counts identical across executors.
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.sites import check_site
from repro.service.errors import InjectedFault, TransientError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.service.job import Job

__all__ = ["FaultPlan", "FaultRule", "KINDS"]

#: The legal fault kinds (see the module docstring).
KINDS = ("transient", "permanent", "deadline", "crash", "drop")

#: Kinds :meth:`FaultPlan.fire` acts on; the structural kinds (crash/drop)
#: are consumed by the supervisor through :meth:`FaultPlan.check` instead.
_RAISING_KINDS = ("transient", "permanent", "deadline")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where*, *what*, and *which hits*.

    Counting (``nth``/``count``) fires on hits ``nth .. nth+count-1`` of
    the per-``(site, job)`` hit counter — e.g. ``nth=1`` faults a job's
    first cache lookup, and because the job retries, its *second* lookup
    (hit 2) passes, exercising the recovery path deterministically.

    ``probability`` switches the rule to a seeded per-hit coin flip drawn
    from an RNG stream private to ``(site, job, rule)``; the flips each
    job sees are then reproducible regardless of thread scheduling.

    ``after`` applies to ``"crash"`` rules only: the worker process
    publishes that many iteration-progress messages before hard-exiting
    (``after=0`` dies at pickup, before any work).
    """

    site: str
    kind: str
    nth: int = 1
    count: int = 1
    probability: Optional[float] = None
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {KINDS}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("nth and count are 1-based and must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.after and self.kind != "crash":
            raise ValueError("after only applies to 'crash' rules")
        # sites come from the shared instrumentation-site registry
        # (repro.obs.sites) — the same table telemetry instruments — so a
        # typo'd or undeclared site fails here instead of never firing.
        # Ad-hoc sites (tests, experiments) register via register_site().
        check_site(self.site)


class FaultPlan:
    """A seeded, thread-safe set of :class:`FaultRule`\\ s.

    The service binds the running job to the worker thread
    (:meth:`scoped`) so that a bare ``fire(site)`` call from deep inside
    the cache or stage machinery still knows *whose* hit it is.  Calls
    with no bound job (e.g. a session used directly) count under the
    ``None`` key and are injectable all the same.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: Dict[Tuple[str, Optional[str]], int] = {}
        self._injected: Dict[str, int] = {}
        self._rngs: Dict[Tuple[int, str, Optional[str]], random.Random] = {}
        self._tl = threading.local()
        #: Optional observer ``(site, rule, job_key, hit)`` called — outside
        #: the plan lock, before the fault acts — for every verdict either
        #: :meth:`fire` or :meth:`check` produced.  The service wires it to
        #: the tracer, so every injected fault is automatically a trace
        #: event; observers must not raise.
        self.on_inject = None

    # -- binding -------------------------------------------------------------

    @contextmanager
    def scoped(self, job: "Job") -> Iterator[None]:
        """Bind *job* to the calling thread for the duration of its run."""

        self._tl.key = str(job.key.digest) if job.key is not None else None
        self._tl.token = job.cancellation
        try:
            yield
        finally:
            self._tl.key = None
            self._tl.token = None

    # -- the hook ------------------------------------------------------------

    def _evaluate(self, site: str) -> Tuple[List[FaultRule], Optional[str], int]:
        """Count one hit at *site* for the bound job; collect the verdicts.

        The shared core of :meth:`fire` and :meth:`check` — both count the
        hit identically, so a plan replays the same pattern whichever way
        its sites are consumed.
        """

        key = getattr(self._tl, "key", None)
        with self._lock:
            hit = self._hits.get((site, key), 0) + 1
            self._hits[(site, key)] = hit
            verdicts = []
            for index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.probability is not None:
                    rng = self._rng(index, site, key)
                    if rng.random() < rule.probability:
                        verdicts.append(rule)
                elif rule.nth <= hit < rule.nth + rule.count:
                    verdicts.append(rule)
            for rule in verdicts:
                self._injected[rule.kind] = self._injected.get(rule.kind, 0) + 1
        return verdicts, key, hit

    def fire(self, site: str) -> None:
        """Count one hit at *site* for the bound job; maybe inject.

        Raises for ``transient``/``permanent`` kinds; a ``deadline`` kind
        expires the bound job's cancellation token and returns.  The
        structural kinds (``crash``/``drop``) are counted but never acted
        on here — the process supervisor consumes them via :meth:`check`.
        """

        verdicts, key, hit = self._evaluate(site)
        self._observe(verdicts, site, key, hit)
        # act outside the lock: injections raise, and the deadline kind
        # touches the token (which other threads may be polling)
        for rule in verdicts:
            if rule.kind in _RAISING_KINDS:
                self._inject(rule, site, key, hit)

    def check(self, site: str) -> List[FaultRule]:
        """Count one hit at *site*; return the fired rules without acting.

        The supervisor's entry point for the structural kinds: a
        ``worker:crash`` check at dispatch returns the crash rules whose
        ``after`` picks the kill boundary, an ``ipc:result-drop`` check at
        result receipt returns whether to discard the payload.  Counting
        is identical to :meth:`fire`, so hit patterns stay deterministic
        per ``(site, job)`` regardless of which method consumes a site.
        """

        verdicts, key, hit = self._evaluate(site)
        self._observe(verdicts, site, key, hit)
        return verdicts

    def _rng(self, index: int, site: str, key: Optional[str]) -> random.Random:
        """The rule's private RNG stream for one (site, job) pair.

        Seeded via ``crc32`` (never the builtin ``hash``, which is
        randomized per process) so streams are stable across runs.
        """

        stream = (index, site, key)
        rng = self._rngs.get(stream)
        if rng is None:
            material = f"{self.seed}|{index}|{site}|{key}".encode()
            rng = random.Random(zlib.crc32(material))
            self._rngs[stream] = rng
        return rng

    def _observe(
        self, verdicts: List[FaultRule], site: str, key: Optional[str], hit: int
    ) -> None:
        observer = self.on_inject
        if observer is None:
            return
        for rule in verdicts:
            observer(site, rule, key, hit)

    def _inject(
        self, rule: FaultRule, site: str, key: Optional[str], hit: int
    ) -> None:
        if rule.kind == "deadline":
            token = getattr(self._tl, "token", None)
            if token is not None:
                token.expire()
            return
        detail = f"injected {rule.kind} fault at {site} (job {key}, hit {hit})"
        if rule.kind == "transient":
            raise TransientError(detail)
        raise InjectedFault(detail)

    # -- observation ---------------------------------------------------------

    def injected(self) -> Dict[str, int]:
        """Injection counts by kind (empty when nothing fired yet)."""

        with self._lock:
            return dict(self._injected)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<FaultPlan seed={self.seed} rules={len(self.rules)} injected={self.injected()}>"
