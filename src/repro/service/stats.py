"""Thread-safe counter registry of the optimization service.

One :class:`ServiceStats` instance is shared by the submit path, every
worker thread, and any number of observers: monotone event counters
(submissions, coalesced attaches, cache hits, terminal outcomes) plus the
two live gauges (queued / running jobs).  All mutation goes through the
methods, which serialize on one lock; :meth:`snapshot` returns a plain
dict that is internally consistent (taken under the same lock), which is
what the service CLI prints and the load-test harness records.
"""

from __future__ import annotations

import threading
from typing import Dict

__all__ = ["ServiceStats"]


class ServiceStats:
    """Counters and gauges of one :class:`~repro.service.OptimizationService`.

    Counters are monotone over the service's lifetime:

    * ``submitted`` — handles created by ``submit`` (including coalesced ones),
    * ``coalesced`` — submissions attached to an identical in-flight job
      instead of enqueueing a new one,
    * ``cache_hits`` — jobs served straight from the artifact cache,
    * ``pipeline_runs`` — jobs that ran the cold pipeline,
    * ``completed`` / ``failed`` / ``cancelled`` — terminal handle outcomes,
    * ``progress_events`` — per-iteration snapshots published to jobs.

    The fault-tolerance layer (PR 6) adds:

    * ``rejected`` — submissions refused by the overload policy (the
      caller got :class:`~repro.service.errors.ServiceOverloadedError`
      instead of a handle; **not** counted in ``submitted``),
    * ``shed`` — queued jobs evicted as load-shedding victims (their
      handles count under ``failed``),
    * ``expired`` — jobs failed by a deadline
      (:class:`~repro.service.errors.JobDeadlineError`),
    * ``degraded`` — jobs resolved from a deadline-degraded artifact,
    * ``retried`` — transient-failure requeues (one per retry attempt),
    * ``recovered`` — jobs that completed after at least one retry.

    The process-worker backend (PR 8) adds:

    * ``worker_deaths`` — worker processes observed dead (or hung past the
      heartbeat timeout and killed) while running a job; each such attempt
      is also counted in ``retried`` when the job requeues,
    * ``worker_respawns`` — replacement worker processes spawned by the
      supervisor after a death.

    ``queued`` and ``running`` are gauges maintained by the queue/worker
    transitions.  Every ``submitted`` handle ends in exactly one of the
    three terminal counters, so ``submitted == completed + failed +
    cancelled`` once the service has drained.
    """

    _COUNTERS = (
        "submitted",
        "coalesced",
        "cache_hits",
        "pipeline_runs",
        "completed",
        "failed",
        "cancelled",
        "progress_events",
        "rejected",
        "shed",
        "expired",
        "degraded",
        "retried",
        "recovered",
        "worker_deaths",
        "worker_respawns",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)
        self.queued = 0
        self.running = 0

    # ------------------------------------------------------------------
    # mutation (all under the lock)
    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the monotone counter *name* by *n*."""

        if name not in self._COUNTERS:
            raise ValueError(f"unknown service counter {name!r}")
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def job_queued(self) -> None:
        with self._lock:
            self.queued += 1

    def job_started(self) -> None:
        with self._lock:
            self.queued -= 1
            self.running += 1

    def job_finished(self) -> None:
        with self._lock:
            self.running -= 1

    def job_dequeued(self) -> None:
        """A queued job left the queue without running (cancelled/shed/
        expired)."""

        with self._lock:
            self.queued -= 1

    def job_requeued(self) -> None:
        """A running job went back to the queue (transient-failure retry).

        Only ``queued`` moves here: the worker's attempt ledger already
        balances ``running`` via ``job_started``/``job_finished``.
        """

        with self._lock:
            self.queued += 1

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    def terminal(self) -> int:
        """Handles that reached a terminal state (done/failed/cancelled)."""

        return self.completed + self.failed + self.cancelled

    def snapshot(self) -> Dict[str, int]:
        """An internally consistent copy of every counter and gauge."""

        with self._lock:
            snap = {name: getattr(self, name) for name in self._COUNTERS}
            snap["queued"] = self.queued
            snap["running"] = self.running
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ServiceStats({self.snapshot()})"
