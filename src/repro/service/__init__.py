"""Concurrent optimization service: queue, coalescing, fault tolerance.

This package is the serving layer of the reproduction — the first
subsystem whose unit of work is *traffic*, not a single pipeline run:

* :mod:`repro.service.job` — :class:`OptimizationRequest` /
  :class:`JobHandle` / :class:`ProgressEvent`: future-like handles over
  submitted work, with cancellation (queued *and* running jobs),
  per-job deadlines, and per-iteration progress streaming,
* :mod:`repro.service.queue` — a blocking priority :class:`JobQueue`
  (deterministic ``(priority, submission)`` order) with an optional
  ``max_depth`` bound for backpressure,
* :mod:`repro.service.stats` — the thread-safe :class:`ServiceStats`
  counter registry (queued/running gauges, coalesce/cache-hit counters,
  and the fault-tolerance counters: rejected/shed/expired/degraded/
  retried/recovered),
* :mod:`repro.service.errors` — the typed serving errors and the
  transient-vs-permanent failure classification,
* :mod:`repro.service.faults` — the seeded, deterministic
  :class:`FaultPlan` fault-injection harness,
* :mod:`repro.service.procpool` — :class:`ProcessWorkerPool`: the
  supervised process-worker backend (PR 8) — spawned worker processes
  with heartbeat/exit-code supervision, orphaned-job recovery through
  the retry path, and file-backed cross-process deadline/cancellation,
* :mod:`repro.service.service` — :class:`OptimizationService`: a worker
  pool over an :class:`~repro.session.OptimizationSession` with
  **in-flight request coalescing** keyed on the session cache key, plus
  deadlines with graceful degradation, overload policies, and retry with
  exponential backoff; ``executor="thread" | "process"`` picks the
  backend.

The ``accsat serve`` CLI mode, ``examples/service_quickstart.py`` and the
load-test harness (``benchmarks/run_service_bench.py``) all sit on this
package.
"""

from repro.service.errors import (
    InjectedFault,
    JobDeadlineError,
    ServiceError,
    ServiceOverloadedError,
    TransientError,
    WorkerDiedError,
    is_transient,
)
from repro.service.faults import FaultPlan, FaultRule
from repro.service.job import (
    CancelledError,
    Job,
    JobHandle,
    JobState,
    OptimizationRequest,
    ProgressEvent,
)
from repro.service.procpool import ProcessWorkerPool, WorkerTask
from repro.service.queue import JobQueue
from repro.service.service import OptimizationService
from repro.service.stats import ServiceStats

__all__ = [
    "CancelledError",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "Job",
    "JobDeadlineError",
    "JobHandle",
    "JobQueue",
    "JobState",
    "OptimizationRequest",
    "OptimizationService",
    "ProcessWorkerPool",
    "ProgressEvent",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceStats",
    "TransientError",
    "WorkerDiedError",
    "WorkerTask",
    "is_transient",
]
