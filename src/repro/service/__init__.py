"""Concurrent optimization service: queue, coalescing, progress streaming.

This package is the serving layer of the reproduction — the first
subsystem whose unit of work is *traffic*, not a single pipeline run:

* :mod:`repro.service.job` — :class:`OptimizationRequest` /
  :class:`JobHandle` / :class:`ProgressEvent`: future-like handles over
  submitted work, with cancellation and per-iteration progress streaming,
* :mod:`repro.service.queue` — a blocking priority :class:`JobQueue`
  (deterministic ``(priority, submission)`` order),
* :mod:`repro.service.stats` — the thread-safe :class:`ServiceStats`
  counter registry (queued/running gauges, coalesce/cache-hit counters),
* :mod:`repro.service.service` — :class:`OptimizationService`: a worker
  pool over an :class:`~repro.session.OptimizationSession` with
  **in-flight request coalescing** keyed on the session cache key.

The ``accsat serve`` CLI mode, ``examples/service_quickstart.py`` and the
load-test harness (``benchmarks/run_service_bench.py``) all sit on this
package.
"""

from repro.service.job import (
    CancelledError,
    Job,
    JobHandle,
    JobState,
    OptimizationRequest,
    ProgressEvent,
)
from repro.service.queue import JobQueue
from repro.service.service import OptimizationService
from repro.service.stats import ServiceStats

__all__ = [
    "CancelledError",
    "Job",
    "JobHandle",
    "JobQueue",
    "JobState",
    "OptimizationRequest",
    "OptimizationService",
    "ProgressEvent",
    "ServiceStats",
]
