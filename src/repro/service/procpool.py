"""Supervised process workers for the optimization service.

:class:`ProcessWorkerPool` runs cold pipelines in long-lived **spawned**
worker processes, one job at a time per worker, behind the service's
existing dispatcher threads: a dispatcher pops a job off the
:class:`~repro.service.queue.JobQueue`, leases an idle worker, ships the
job down the worker's pipe, and relays the child's per-iteration progress
messages back into the job's event stream.  The pool owns exactly the
machinery a process boundary makes necessary:

* **disk-cache handoff** — every worker adopts the parent's disk cache
  tier through :func:`~repro.session.executor._worker_cache_init` (the
  initializer proven by ``tests/session/test_process_cache_handoff.py``)
  and runs its own :class:`~repro.session.OptimizationSession` over a
  memory+disk tier on the same directory, so respawned workers start
  warm and artifacts stay content-addressed and shared,
* **supervision** — the dispatcher monitors its leased worker with
  heartbeat timestamps (every message counts; a busy, healthy child
  publishes one per saturation iteration) and ``Process.is_alive`` /
  exit-code checks.  A dead worker's pipe is drained first — a result the
  child sent before dying is still a valid result — then the pool
  respawns a replacement and raises
  :class:`~repro.service.errors.WorkerDiedError`, a *transient* error by
  construction, so the service's PR 6 retry/backoff path requeues the
  orphaned job and the conservation law
  ``submitted == completed + failed + cancelled`` survives any kill
  pattern.  An optional ``heartbeat_timeout`` additionally kills (then
  replaces) a live-but-silent worker, turning hangs into the same
  transient death.
* **cross-process deadlines/cancellation** — the parent attaches a
  :class:`~repro.egraph.runner.FileTripSignal` to the job's token; the
  child builds its own :class:`~repro.egraph.runner.CancellationToken`
  from the *remaining* deadline seconds (monotonic instants do not cross
  process boundaries) plus the same trip file, and its ``Runner`` polls
  it at iteration boundaries exactly like the thread path — same
  ``StopReason`` semantics, same graceful-degradation contract.  A child
  that dies before polling is covered by the fallbacks: the requeued
  attempt hits the pickup-time deadline check, and an injected
  ``ipc:result-drop`` exercises the post-hoc result-drop path.

The child never sees the :class:`~repro.service.faults.FaultPlan`: crash
verdicts are computed parent-side (deterministically, per job key) and
shipped as a ``crash_after`` iteration count in the task, which the child
honours with a hard ``os._exit`` — indistinguishable from a real SIGKILL
at that boundary.
"""

from __future__ import annotations

import os
import pickle
import queue
import threading
import time
import multiprocessing
import multiprocessing.connection
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.service.errors import TransientError, WorkerDiedError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.egraph.runner import IterationReport
    from repro.saturator.config import SaturatorConfig
    from repro.saturator.report import OptimizationResult
    from repro.service.stats import ServiceStats

__all__ = ["ProcessWorkerPool", "WorkerTask"]

#: Child exit code of an injected ``worker:crash`` (``os._exit``); tests
#: assert on it to tell injected kills from real ones.
CRASH_EXIT_CODE = 87


@dataclass(frozen=True)
class WorkerTask:
    """One attempt of one job, shipped to a worker process.

    ``task_id`` is unique per (job, attempt) so stale pipe messages can
    never be mistaken for the current attempt's.  ``timeout`` is the
    deadline *re-anchored as remaining seconds at dispatch* — monotonic
    instants are meaningless across processes.  ``trip_path`` names the
    job's shared trip file (see
    :class:`~repro.egraph.runner.FileTripSignal`); ``crash_after`` arms an
    injected hard-exit after that many published iterations (0 = die at
    pickup), ``None`` disarms it.
    """

    task_id: str
    source: str
    config: "SaturatorConfig"
    name_prefix: str
    timeout: Optional[float]
    trip_path: Optional[str]
    crash_after: Optional[int]
    #: Telemetry opt-in: the child builds a local tracer, runs the attempt
    #: under a ``worker:run`` root span, and ships its buffered records up
    #: the pipe (``("spans", task_id, records)``) just before the terminal
    #: message; the parent re-parents them under the attempt span.  Purely
    #: observational — the flag never reaches the pipeline's cache key.
    trace: bool = False


class _CrashNow(BaseException):
    """Child-internal: unwind to the crash point of an injected kill."""


def _child_main(
    conn: "multiprocessing.connection.Connection",
    cache_dir: Optional[str],
) -> None:
    """Worker-process main loop: recv a task, run it, send messages back.

    Messages up the pipe (first element is the tag, second the task id):

    * ``("progress", task_id, IterationReport)`` — one per saturation
      iteration; doubles as the heartbeat,
    * ``("done", task_id, OptimizationResult, from_cache)``,
    * ``("cancelled", task_id, message)`` / ``("deadline", task_id,
      message)`` — the cooperative stops, mapped back to their exception
      types parent-side,
    * ``("error", task_id, pickled_exc | None, type_name, message,
      transient)`` — any other failure; the original exception rides
      along when it pickles.
    * ``("spans", task_id, records)`` — when ``task.trace``: the child
      tracer's rebased record buffer, sent immediately *before* the
      terminal message so an attempt's spans always precede its outcome
      (a crashed child simply loses its buffer — the parent records the
      death on the attempt span instead).

    A ``None`` task is the shutdown sentinel.
    """

    from repro.egraph.runner import CancellationToken, FileTripSignal
    from repro.session.cache import DiskCache, MemoryCache, TieredCache
    from repro.session.executor import _worker_cache_init
    from repro.session.session import OptimizationSession
    from repro.session.stages import DeadlineExceeded, SaturationCancelled

    if cache_dir:
        # the PR 3 handoff: export REPRO_CACHE_DIR and rebind any already
        # imported experiment-harness cache onto the shared directory
        _worker_cache_init(cache_dir)
        cache = TieredCache(MemoryCache(), DiskCache(cache_dir))
    else:
        cache = None
    session = OptimizationSession(cache=cache)

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        if task.crash_after == 0:
            os._exit(CRASH_EXIT_CODE)

        signal = FileTripSignal(task.trip_path) if task.trip_path else None
        token = CancellationToken(timeout=task.timeout, signal=signal)
        published = 0

        def on_iteration(row: "IterationReport") -> None:
            nonlocal published
            conn.send(("progress", task.task_id, row))
            published += 1
            if task.crash_after is not None and published >= task.crash_after:
                raise _CrashNow()

        tracer = None
        root_span = None
        if task.trace:
            from repro.obs.trace import Tracer

            tracer = Tracer()
            root_span = tracer.span(
                "worker:run", task=task.task_id, pid=os.getpid()
            )
            if cache is not None:
                # cache probes during this attempt become trace events
                # parented (via the bind below) to the worker's root span
                cache.trace_hook = tracer.hook

        try:
            run_scope = (
                tracer.bind(root_span) if tracer is not None else nullcontext()
            )
            with run_scope:
                result, from_cache = session.run_detailed(
                    task.source,
                    task.config,
                    task.name_prefix,
                    on_iteration=on_iteration,
                    cancellation=token,
                    tracer=tracer,
                    trace_parent=None if root_span is None else root_span.span_id,
                )
        except _CrashNow:
            # the injected kill: a hard exit at the iteration boundary,
            # exactly where a real SIGKILL mid-saturation would land
            os._exit(CRASH_EXIT_CODE)
        except SaturationCancelled as error:
            terminal = ("cancelled", task.task_id, str(error))
        except DeadlineExceeded as error:
            terminal = ("deadline", task.task_id, str(error))
        except BaseException as error:  # ship it; the parent re-raises
            try:
                payload: Optional[bytes] = pickle.dumps(error)
            except Exception:
                payload = None
            terminal = (
                "error",
                task.task_id,
                payload,
                type(error).__name__,
                str(error),
                isinstance(error, OSError),
            )
        else:
            terminal = ("done", task.task_id, result, from_cache)
        if tracer is not None:
            root_span.end(outcome=terminal[0])
            if cache is not None:
                cache.trace_hook = None
            # rebased timestamps: perf_counter origins do not cross the
            # process boundary; the parent offsets them to the attempt span
            conn.send(("spans", task.task_id, tracer.rebased_records()))
        conn.send(terminal)


def _ensure_child_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Spawned processes re-import this module from a fresh interpreter, so
    a parent that got ``repro`` from a ``sys.path`` tweak (conftest, the
    benchmark harness) rather than an installed package or ``PYTHONPATH``
    would hatch children that die on the import.  Prepending the package
    root to ``PYTHONPATH`` before spawning closes the gap.
    """

    import repro

    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    current = os.environ.get("PYTHONPATH", "")
    if root not in current.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            root if not current else root + os.pathsep + current
        )


class _Worker:
    """One worker process plus the parent's end of its pipe."""

    __slots__ = ("proc", "conn", "last_beat")

    def __init__(
        self,
        proc: "multiprocessing.process.BaseProcess",
        conn: "multiprocessing.connection.Connection",
    ) -> None:
        self.proc = proc
        self.conn = conn
        self.last_beat = time.monotonic()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=2.0)


class ProcessWorkerPool:
    """A supervised, self-healing pool of pipeline worker processes.

    ``workers`` sizes the pool (normally equal to the service's dispatcher
    thread count, so a dispatcher never waits for a lease while a worker
    idles).  ``cache_dir`` is the shared disk-cache directory handed to
    every child (``None`` = children run uncached and the parent-side
    cache is the only tier).  ``heartbeat_timeout`` — seconds of silence
    from a *busy* worker before the supervisor kills and replaces it;
    ``None`` disables the hang defense (saturation iterations have no
    bounded duration in general, so this is opt-in).
    """

    #: Seconds between liveness checks while waiting on a busy worker.
    _POLL_INTERVAL = 0.05

    def __init__(
        self,
        workers: int,
        cache_dir: Optional[str] = None,
        heartbeat_timeout: Optional[float] = None,
        stats: Optional["ServiceStats"] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        self.workers = workers
        self.cache_dir = cache_dir
        self.heartbeat_timeout = heartbeat_timeout
        self.stats = stats
        self._ctx = multiprocessing.get_context("spawn")
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._all: List[_Worker] = []
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ProcessWorkerPool":
        with self._lock:
            if self._stopped:
                raise RuntimeError("pool was stopped; build a new one")
            if self._started:
                return self
            self._started = True
            _ensure_child_importable()
            for _ in range(self.workers):
                worker = self._spawn()
                self._all.append(worker)
                self._idle.put(worker)
        return self

    def stop(self) -> None:
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            workers = list(self._all)
        for worker in workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            worker.close()

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker processes (tests kill these)."""

        with self._lock:
            return [w.pid for w in self._all if w.pid is not None]

    # -- supervision ---------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_child_main,
            args=(child_conn, self.cache_dir),
            name="repro-service-worker",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _replace(self, worker: _Worker, respawn: bool = True) -> None:
        """Retire a dead (or poisoned) worker; lease out a fresh one."""

        if self.stats is not None:
            self.stats.count("worker_deaths")
        worker.close()
        with self._lock:
            try:
                self._all.remove(worker)
            except ValueError:
                pass
            if self._stopped or not respawn:
                return
            fresh = self._spawn()
            self._all.append(fresh)
        if self.stats is not None:
            self.stats.count("worker_respawns")
        self._idle.put(fresh)

    # -- running one attempt -------------------------------------------------

    def run_job(
        self,
        task: WorkerTask,
        on_progress: Optional[Callable[["IterationReport"], None]] = None,
        on_spans: Optional[Callable[[list], None]] = None,
    ) -> Tuple["OptimizationResult", bool]:
        """Run one attempt on a leased worker; supervise until terminal.

        Returns ``(result, from_cache)``; raises the child's cooperative
        stops (:class:`~repro.session.stages.SaturationCancelled` /
        :class:`~repro.session.stages.DeadlineExceeded`) and failures as
        the exceptions the service's worker loop already classifies, and
        :class:`~repro.service.errors.WorkerDiedError` when the worker
        died or hung — after respawning its replacement.
        """

        if not self._started or self._stopped:
            raise RuntimeError("pool is not running")
        worker = self._idle.get()
        while not worker.proc.is_alive():
            # died while idle (e.g. an external kill between jobs): replace
            # and lease the replacement instead — no job was lost
            self._replace(worker)
            worker = self._idle.get()
        try:
            worker.conn.send(task)
        except (OSError, ValueError):
            self._replace(worker)
            raise WorkerDiedError(
                f"worker pid {worker.pid} died before accepting a job"
            )
        worker.last_beat = time.monotonic()
        try:
            outcome = self._supervise(worker, task, on_progress, on_spans)
        except WorkerDiedError:
            raise
        except BaseException:
            # a parent-side failure (e.g. an injected fault raised by the
            # progress callback) leaves the child mid-job: the lease
            # cannot be returned, so the worker is killed and replaced —
            # the cost of keeping "publish fault fails the attempt"
            # semantics identical to the thread path
            worker.proc.kill()
            self._replace(worker)
            raise
        self._idle.put(worker)
        return self._settle(outcome, task)

    def _supervise(
        self,
        worker: _Worker,
        task: WorkerTask,
        on_progress: Optional[Callable[["IterationReport"], None]],
        on_spans: Optional[Callable[[list], None]] = None,
    ) -> tuple:
        """Pump messages until the attempt's terminal message (returned).

        Raises :class:`WorkerDiedError` — after draining the pipe (a
        terminal message sent before death still counts) and respawning —
        when the worker exits or breaches the heartbeat timeout.
        """

        while True:
            try:
                ready = worker.conn.poll(self._POLL_INTERVAL)
            except OSError:
                ready = False
            if ready:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._died(worker, task, "its pipe closed mid-message")
                worker.last_beat = time.monotonic()
                terminal = self._relay(message, task, on_progress, on_spans)
                if terminal is not None:
                    return terminal
                continue
            if not worker.proc.is_alive():
                terminal = self._drain(worker, task, on_progress, on_spans)
                if terminal is not None:
                    # the child finished the job, then died: the result is
                    # complete and valid — use it, but still replace the
                    # worker before returning
                    self._replace(worker)
                    return terminal
                code = worker.proc.exitcode
                self._died(worker, task, f"exit code {code}")
            elif (
                self.heartbeat_timeout is not None
                and time.monotonic() - worker.last_beat > self.heartbeat_timeout
            ):
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
                self._died(
                    worker,
                    task,
                    f"no heartbeat for {self.heartbeat_timeout}s (killed)",
                )

    def _died(self, worker: _Worker, task: WorkerTask, why: str) -> None:
        pid = worker.pid
        self._replace(worker)
        raise WorkerDiedError(
            f"worker pid {pid} died while running task {task.task_id}: {why}"
        )

    def _drain(
        self,
        worker: _Worker,
        task: WorkerTask,
        on_progress: Optional[Callable[["IterationReport"], None]],
        on_spans: Optional[Callable[[list], None]] = None,
    ) -> Optional[tuple]:
        """Consume whatever a dead worker managed to send; return a
        terminal message if one made it out before the death."""

        while True:
            try:
                if not worker.conn.poll(0):
                    return None
                message = worker.conn.recv()
            except (EOFError, OSError):
                return None
            terminal = self._relay(message, task, on_progress, on_spans)
            if terminal is not None:
                return terminal

    def _relay(
        self,
        message: tuple,
        task: WorkerTask,
        on_progress: Optional[Callable[["IterationReport"], None]],
        on_spans: Optional[Callable[[list], None]] = None,
    ) -> Optional[tuple]:
        """Dispatch one child message; non-None = the terminal message."""

        tag, task_id = message[0], message[1]
        if task_id != task.task_id:
            return None  # stale: a previous attempt's leftover
        if tag == "progress":
            if on_progress is not None:
                on_progress(message[2])
            return None
        if tag == "spans":
            if on_spans is not None:
                on_spans(message[2])
            return None
        return message

    def _settle(
        self, outcome: tuple, task: WorkerTask
    ) -> Tuple["OptimizationResult", bool]:
        """Turn the terminal message into a return value or an exception."""

        from repro.session.stages import DeadlineExceeded, SaturationCancelled

        tag = outcome[0]
        if tag == "done":
            return outcome[2], outcome[3]
        if tag == "cancelled":
            raise SaturationCancelled(outcome[2])
        if tag == "deadline":
            raise DeadlineExceeded(outcome[2])
        assert tag == "error", f"unexpected worker message tag {tag!r}"
        _, _, payload, type_name, text, transient = outcome
        error: Optional[BaseException] = None
        if payload is not None:
            try:
                loaded = pickle.loads(payload)
            except Exception:
                loaded = None
            if isinstance(loaded, BaseException):
                error = loaded
        if error is not None:
            raise error
        detail = f"{type_name} in worker (task {task.task_id}): {text}"
        if transient:
            raise TransientError(detail)
        raise RuntimeError(detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<ProcessWorkerPool workers={self.workers} "
            f"started={self._started} stopped={self._stopped}>"
        )
