"""Jobs of the optimization service: requests, handles, progress events.

A :class:`~repro.service.service.OptimizationService` turns every
submission into a :class:`JobHandle` — a ``Future``-like view the caller
polls, waits on, cancels, or streams progress from.  Several handles may
share one underlying :class:`Job`: identical concurrent submissions are
**coalesced** onto the in-flight job (same session cache key), so N
submitters pay for one pipeline run and each still gets an independent
result object.

State machine of a job::

    QUEUED ──▶ RUNNING ──▶ DONE
       │        │  │ └───▶ FAILED
       │        │  └─────▶ CANCELLED   (cooperative, via the token)
       │        └────────▶ QUEUED      (transient-failure retry)
       └─────▶ CANCELLED

A handle's :meth:`JobHandle.cancel` detaches that submission, and the job
itself is cancelled once every attached handle detached.  For a *queued*
job that is immediate; for a *running* job the last detach trips the
job's :class:`~repro.egraph.runner.CancellationToken` and the saturation
loop stops cooperatively at the next iteration boundary — best effort: a
pipeline already past saturation completes (and its artifact still lands
in the cache, where it benefits every later submission).
"""

from __future__ import annotations

import copy
import enum
import threading
import time
from concurrent.futures import CancelledError, TimeoutError
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, List, NamedTuple, Optional

from repro.saturator.config import SaturatorConfig

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.egraph.runner import CancellationToken
    from repro.saturator.report import OptimizationResult
    from repro.service.stats import ServiceStats
    from repro.session.fingerprint import CacheKey

__all__ = [
    "CancelledError",
    "Job",
    "JobHandle",
    "JobState",
    "OptimizationRequest",
    "ProgressEvent",
]


class JobState(enum.Enum):
    """Lifecycle state of a job (and of each handle on it)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class OptimizationRequest:
    """One unit of service work: a source, its configuration, a priority.

    ``priority`` orders the queue — smaller runs first, ties in submission
    order — so latency-sensitive requests overtake bulk backfill.  Two
    requests coalesce when their (source, config, name_prefix) cache keys
    match; priority is *not* part of the key (the first submission's
    priority decides where the shared job sits in the queue).
    """

    source: str
    config: Optional[SaturatorConfig] = None
    priority: int = 0
    name_prefix: str = "kernel"
    #: Seconds from submission until the job's deadline: past it, a
    #: queued job fails with ``JobDeadlineError`` at pickup, and a running
    #: one stops saturating at the next iteration boundary — returning
    #: its best anytime snapshot (``degraded=True``) when one exists.
    #: The deadline is *not* part of the coalescing key: followers share
    #: the primary submission's deadline.  ``None`` means no deadline.
    deadline: Optional[float] = None


class ProgressEvent(NamedTuple):
    """One per-iteration saturation snapshot published to a running job.

    ``seq`` numbers the events of one job from 0 (a multi-kernel source
    publishes its kernels' iterations back to back); ``extracted_cost`` is
    the best-so-far anytime cost at that boundary, or ``None`` when the
    job's config has anytime extraction disabled.
    """

    seq: int
    iteration: int
    applied: int
    egraph_nodes: int
    egraph_classes: int
    extracted_cost: Optional[float]


@dataclass(eq=False)  # identity semantics: jobs live in the queue's set
class Job:
    """Shared execution state behind one or more coalesced handles.

    All mutation happens under ``cond``; waiters (handle ``result`` /
    ``wait`` / ``stream``) block on the same condition.  The service is
    the only writer of ``state``/``result``/``error``.
    """

    request: OptimizationRequest
    key: "CacheKey"
    seq: int = 0
    state: JobState = JobState.QUEUED
    result: Optional["OptimizationResult"] = None
    error: Optional[BaseException] = None
    from_cache: bool = False
    events: List[ProgressEvent] = field(default_factory=list)
    handles: List["JobHandle"] = field(default_factory=list)
    cond: threading.Condition = field(default_factory=threading.Condition)
    #: Service counter registry (set by the service at creation).
    stats: Optional["ServiceStats"] = None
    #: Called (outside ``cond``) when the job transitions to CANCELLED,
    #: so the service can drop it from the in-flight registry.
    on_cancelled: Optional[Callable[["Job"], None]] = None
    #: Cooperative deadline/cancel token threaded into the saturation
    #: loop (set by the service at submit; every job gets one so running
    #: jobs are always cancellable, deadline or not).
    cancellation: Optional["CancellationToken"] = None
    #: Transient-failure attempts so far (see the service's retry policy).
    retries: int = 0
    #: Next progress-event ``seq``; lives on the job (not the attempt) so
    #: events stay uniquely and monotonically numbered across retries —
    #: streams must never see the event list shrink or renumber.
    event_seq: int = 0
    #: The job's telemetry span (a :class:`repro.obs.Span`), set by the
    #: service at submit when tracing is on; ``None`` otherwise.  The
    #: service ends it exactly once with the job's terminal state.
    span: Optional[object] = None
    #: The span of the attempt currently running this job (set by the
    #: worker loop per attempt); ended before the job span so the span
    #: tree nests attempt ⊆ job even on terminal transitions that happen
    #: mid-attempt.
    attempt_span: Optional[object] = None
    #: Monotonic timestamps of the lifecycle transitions (for latency
    #: accounting in the load-test harness; never part of any artifact).
    created_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    # -- transitions (service-side) -----------------------------------------

    def attach(self) -> Optional["JobHandle"]:
        """Create a new handle on this job (submit-side).

        Returns ``None`` when the job was cancelled in the meantime — the
        submitter must enqueue a fresh job instead of joining a dead one.
        """

        with self.cond:
            if self.state is JobState.CANCELLED:
                return None
            handle = JobHandle(self, coalesced=bool(self.handles))
            self.handles.append(handle)
            return handle

    def start(self) -> bool:
        """QUEUED → RUNNING; False when the job was cancelled meanwhile."""

        with self.cond:
            if self.state is not JobState.QUEUED:
                return False
            self.state = JobState.RUNNING
            self.started_at = time.monotonic()
            self.cond.notify_all()
            return True

    def publish(self, event: ProgressEvent) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    def resolve(self, result: "OptimizationResult", from_cache: bool) -> None:
        with self.cond:
            self.result = result
            self.from_cache = from_cache
            self.state = JobState.DONE
            self.finished_at = time.monotonic()
            self.cond.notify_all()

    def fail(self, error: BaseException) -> None:
        with self.cond:
            self.error = error
            self.state = JobState.FAILED
            self.finished_at = time.monotonic()
            self.cond.notify_all()

    def requeue(self) -> bool:
        """RUNNING → QUEUED for a transient-failure retry; False when the
        job is not running (e.g. cancelled mid-attempt)."""

        with self.cond:
            if self.state is not JobState.RUNNING:
                return False
            self.state = JobState.QUEUED
            self.cond.notify_all()
            return True

    def cancel_run(self) -> int:
        """RUNNING → CANCELLED after a cooperative mid-saturation stop.

        Returns the number of handles that had *not* individually
        cancelled (late coalescers caught by the job's cancellation) so
        the service can count their terminal outcome.
        """

        with self.cond:
            if self.state is not JobState.RUNNING:
                return 0
            live = sum(1 for h in self.handles if not h._cancelled)
            self.state = JobState.CANCELLED
            self.finished_at = time.monotonic()
            self.cond.notify_all()
            return live

    # -- handle bookkeeping --------------------------------------------------

    def _handle_cancelled(self) -> bool:
        """Called under ``cond`` when a handle detached; True when the job
        itself just became cancelled (no live handles remain)."""

        if self.state is not JobState.QUEUED:
            return False
        if any(not h._cancelled for h in self.handles):
            return False
        self.state = JobState.CANCELLED
        self.cond.notify_all()
        return True

    @property
    def live_handles(self) -> int:
        with self.cond:
            return sum(1 for h in self.handles if not h._cancelled)


class JobHandle:
    """Future-like view of one submission.

    Handles on a coalesced job are independent: each can be polled,
    waited, or cancelled on its own, and each materializes its own result
    copy (mutating one caller's reports never leaks into another's).
    """

    def __init__(self, job: Job, coalesced: bool = False) -> None:
        self._job = job
        #: True when this submission attached to an existing in-flight job.
        self.coalesced = coalesced
        #: Monotonic submission timestamp of *this* handle.
        self.created_at = time.monotonic()
        self._cancelled = False
        self._materialized: Optional["OptimizationResult"] = None

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> JobState:
        if self._cancelled:
            return JobState.CANCELLED
        return self._job.state

    def done(self) -> bool:
        return self.state.terminal

    def cancelled(self) -> bool:
        return self.state is JobState.CANCELLED

    @property
    def error(self) -> Optional[BaseException]:
        return self._job.error if not self._cancelled else None

    @property
    def from_cache(self) -> bool:
        """True when the job was served from the artifact cache."""

        return self._job.from_cache

    @property
    def request(self) -> OptimizationRequest:
        return self._job.request

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-terminal wall-clock seconds (None while in flight)."""

        finished = self._job.finished_at
        return None if finished is None else max(0.0, finished - self.created_at)

    # -- waiting ------------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until this handle is terminal; False on timeout."""

        if self._cancelled:
            return True
        with self._job.cond:
            return self._job.cond.wait_for(
                lambda: self._cancelled or self._job.state.terminal, timeout
            )

    def result(self, timeout: Optional[float] = None) -> "OptimizationResult":
        """The job's :class:`OptimizationResult`; blocks until terminal.

        Raises :class:`CancelledError` when this handle was cancelled,
        re-raises the job's exception when it failed, and raises
        :class:`TimeoutError` when *timeout* elapses first.
        """

        if not self.wait(timeout):
            raise TimeoutError(f"job not finished within {timeout!r}s")
        state = self.state
        if state is JobState.CANCELLED:
            raise CancelledError("job was cancelled")
        if state is JobState.FAILED:
            assert self._job.error is not None
            raise self._job.error
        if self._materialized is None:
            with self._job.cond:
                result = self._job.result
                # the first handle owns the job's result object; coalesced
                # followers get their own deep copy, mirroring the artifact
                # cache's isolation guarantee
                self._materialized = (
                    result if not self.coalesced else copy.deepcopy(result)
                )
        return self._materialized

    # -- cancellation --------------------------------------------------------

    def cancel(self) -> bool:
        """Detach this submission; True on success.

        A *queued* job detaches immediately (cancelling the last live
        handle cancels the job, and the worker loop skips it).  A
        *running* job is cancelled cooperatively: the last live handle's
        detach trips the job's cancellation token, and the saturation
        loop stops at its next iteration boundary — best effort, a
        pipeline already past saturation completes anyway.  Terminal jobs
        are not cancellable.
        """

        job = self._job
        trip_token = None
        with job.cond:
            if self._cancelled:
                return True
            if job.state is JobState.RUNNING:
                if job.cancellation is None:
                    return False
                self._cancelled = True
                if not any(not h._cancelled for h in job.handles):
                    trip_token = job.cancellation
                job_cancelled = False
                job.cond.notify_all()
            elif job.state is not JobState.QUEUED:
                return False
            else:
                self._cancelled = True
                job_cancelled = job._handle_cancelled()
                job.cond.notify_all()
        if trip_token is not None:
            trip_token.cancel()
        # bookkeeping outside ``cond``: the stats lock and the service's
        # registry lock must never nest inside a job condition (the submit
        # path holds the registry lock while taking ``cond`` in attach)
        if job.stats is not None:
            job.stats.count("cancelled")
        if job_cancelled:
            if job.stats is not None:
                job.stats.job_dequeued()
            if job.on_cancelled is not None:
                job.on_cancelled(job)
        return True

    # -- progress ------------------------------------------------------------

    def progress(self) -> List[ProgressEvent]:
        """Snapshot of the per-iteration events published so far."""

        with self._job.cond:
            return list(self._job.events)

    def stream(self, timeout: Optional[float] = None) -> Iterator[ProgressEvent]:
        """Yield progress events as they arrive until the job is terminal.

        ``timeout`` bounds each wait for the *next* event (a
        :class:`TimeoutError` is raised when it elapses), not the whole
        stream.  Events published before the stream started are replayed
        first, so a late subscriber sees the full trajectory.
        """

        next_index = 0
        job = self._job
        while True:
            with job.cond:
                ok = job.cond.wait_for(
                    lambda: len(job.events) > next_index
                    or job.state.terminal
                    or self._cancelled,
                    timeout,
                )
                if not ok:
                    raise TimeoutError(f"no progress within {timeout!r}s")
                batch = job.events[next_index:]
                terminal = job.state.terminal or self._cancelled
            for event in batch:
                yield event
            next_index += len(batch)
            if terminal and next_index == len(job.events):
                return

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<JobHandle state={self.state.value} coalesced={self.coalesced} "
            f"events={len(self._job.events)}>"
        )
