"""Priority job queue feeding the service's worker loop.

A small blocking priority queue specialised for :class:`~repro.service.job.Job`:
entries order by ``(priority, submission seq)`` — smaller priority first,
ties in FIFO order — so the pop order is a deterministic function of the
submission sequence.  Cancelled jobs are skipped lazily at pop time, and
:meth:`close` wakes every blocked worker with ``None`` so the pool can
drain and exit.

For backpressure the queue can be **bounded** (``max_depth``): the depth
that counts is :attr:`live_depth` — jobs still poppable — not the heap
length, so cancelled/shed entries awaiting their lazy skip never hold
space hostage.  A full queue makes :meth:`push` block (the service's
``block`` overload policy) until a pop or a :meth:`discard` frees a slot;
the ``reject``/``shed`` policies use :attr:`full`, :meth:`worst_queued`
and :meth:`steal` instead and never block.

Lazy skipping leaves **tombstones** in the heap (entries whose job was
stolen or discarded).  Mirroring ``ColumnStore.compact()``'s policy, the
queue compacts whenever tombstones outnumber live entries — i.e. exceed
half the heap — so the heap's size stays within 2x the live job count
even under adversarial cancel/shed storms.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Set, Tuple

from repro.service.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """Blocking, closable, optionally bounded priority queue of jobs."""

    def __init__(self, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 (or None)")
        self.max_depth = max_depth
        self._heap: List[Tuple[int, int, Job]] = []
        #: Jobs that a pop may still return.  Membership here — not the
        #: heap — is the authoritative occupancy: :meth:`steal` and
        #: :meth:`discard` remove a job instantly while its heap entry
        #: lingers as a tombstone for the lazy skip.
        self._live: Set[Job] = set()
        self._cond = threading.Condition()
        self._closed = False

    # -- producing -----------------------------------------------------------

    def push(
        self, job: Job, timeout: Optional[float] = None, force: bool = False
    ) -> bool:
        """Enqueue *job*; False when a bounded queue stayed full past
        *timeout*.

        On a bounded queue the call blocks while :attr:`live_depth` is at
        ``max_depth`` (indefinitely with ``timeout=None``).  ``force``
        skips the bound — retries use it so a job the service already
        accepted can never be lost to a full queue.  Raises
        ``RuntimeError`` when the queue is (or gets) closed.
        """

        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self.max_depth is not None and not force:
                ok = self._cond.wait_for(
                    lambda: self._closed or self._depth() < self.max_depth,
                    timeout,
                )
                if self._closed:
                    raise RuntimeError("queue is closed")
                if not ok:
                    return False
            heapq.heappush(self._heap, (job.request.priority, job.seq, job))
            self._live.add(job)
            self._cond.notify()
            return True

    # -- consuming -----------------------------------------------------------

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next queued job; blocks while empty.

        Returns ``None`` when the queue is closed and drained, or when
        *timeout* elapses.  Jobs cancelled or stolen while waiting in the
        heap are discarded here, never returned.
        """

        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    alive = job in self._live and job.state is JobState.QUEUED
                    self._live.discard(job)
                    # a slot opened either way — wake blocked pushers
                    self._cond.notify_all()
                    if alive:
                        return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    # -- occupancy -----------------------------------------------------------

    def _depth(self) -> int:
        """Poppable jobs (caller holds the condition)."""

        return sum(1 for job in self._live if job.state is JobState.QUEUED)

    @property
    def live_depth(self) -> int:
        with self._cond:
            return self._depth()

    @property
    def full(self) -> bool:
        if self.max_depth is None:
            return False
        with self._cond:
            return self._depth() >= self.max_depth

    def _compact(self) -> None:
        """Drop tombstones when they exceed half the heap (caller holds
        the condition).

        Every live job has exactly one heap entry (a requeued job is only
        re-pushed after its pop removed both), so the tombstone count is
        simply ``len(heap) - len(live)``.  The >half trigger is the same
        amortization ``ColumnStore.compact()`` uses: each rebuild is
        O(heap) but at least half the heap was garbage, so the cost
        amortizes to O(1) per discard and the heap never exceeds
        ``2 * live + 1`` entries.
        """

        tombstones = len(self._heap) - len(self._live)
        if tombstones * 2 > len(self._heap):
            self._heap = [entry for entry in self._heap if entry[2] in self._live]
            heapq.heapify(self._heap)

    def discard(self, job: Job) -> None:
        """Free *job*'s slot early (it was cancelled outside the queue)."""

        with self._cond:
            if job in self._live:
                self._live.discard(job)
                self._compact()
                self._cond.notify_all()

    def worst_queued(self) -> Optional[Job]:
        """The load-shedding victim candidate: lowest priority (largest
        number), then newest submission.  ``None`` when nothing is
        poppable."""

        with self._cond:
            queued = [j for j in self._live if j.state is JobState.QUEUED]
            if not queued:
                return None
            return max(queued, key=lambda j: (j.request.priority, j.seq))

    def steal(self, job: Job) -> bool:
        """Atomically claim *job* so no pop can return it; False when a
        worker (or another thief) got there first."""

        with self._cond:
            if job not in self._live or job.state is not JobState.QUEUED:
                return False
            self._live.discard(job)
            self._compact()
            self._cond.notify_all()
            return True

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop`` to drain."""

        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Jobs still heaped (cancelled-but-unpopped entries included)."""

        with self._cond:
            return len(self._heap)
