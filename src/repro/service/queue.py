"""Priority job queue feeding the service's worker loop.

A small blocking priority queue specialised for :class:`~repro.service.job.Job`:
entries order by ``(priority, submission seq)`` — smaller priority first,
ties in FIFO order — so the pop order is a deterministic function of the
submission sequence.  Cancelled jobs are skipped lazily at pop time (the
heap keeps no tombstone bookkeeping), and :meth:`close` wakes every blocked
worker with ``None`` so the pool can drain and exit.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Tuple

from repro.service.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """Blocking, closable priority queue of queued jobs."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._closed = False

    def push(self, job: Job) -> None:
        """Enqueue *job* (ordered by its request priority, then seq)."""

        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            heapq.heappush(self._heap, (job.request.priority, job.seq, job))
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next queued job; blocks while empty.

        Returns ``None`` when the queue is closed and drained, or when
        *timeout* elapses.  Jobs cancelled while waiting in the heap are
        discarded here, never returned.
        """

        with self._cond:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state is JobState.QUEUED:
                        return job
                    # cancelled while queued: lazily dropped
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop`` to drain."""

        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Jobs still heaped (cancelled-but-unpopped entries included)."""

        with self._cond:
            return len(self._heap)
