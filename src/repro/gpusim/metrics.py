"""Aggregation helpers shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.gpusim.launch import KernelPerformance

__all__ = ["KernelMeasurement", "VariantComparison", "speedup", "geomean"]


@dataclass
class KernelMeasurement:
    """One kernel's performance under every generated-code variant."""

    kernel: str
    #: variant name ("original", "cse", "cse+sat", "cse+bulk", "accsat") ->
    #: modelled performance.
    by_variant: Dict[str, KernelPerformance] = field(default_factory=dict)

    def time(self, variant: str) -> float:
        return self.by_variant[variant].time_s

    def speedup(self, variant: str, baseline: str = "original") -> float:
        return speedup(self.time(baseline), self.time(variant))


@dataclass
class VariantComparison:
    """Benchmark-level comparison: total time per variant + speedups."""

    benchmark: str
    compiler: str
    gpu: str
    total_time: Dict[str, float] = field(default_factory=dict)
    kernels: List[KernelMeasurement] = field(default_factory=list)

    def speedup(self, variant: str, baseline: str = "original") -> float:
        return speedup(self.total_time[baseline], self.total_time[variant])

    def speedups(self, baseline: str = "original") -> Dict[str, float]:
        return {
            variant: self.speedup(variant, baseline)
            for variant in self.total_time
            if variant != baseline
        }


def speedup(baseline_time: float, variant_time: float) -> float:
    """Speedup of *variant* over *baseline* (>1 means faster)."""

    if variant_time <= 0:
        return float("inf")
    return baseline_time / variant_time


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the usual way to average speedups)."""

    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return 1.0
    return float(np.exp(np.mean(np.log(array))))
