"""Compiler models.

Each model captures how a given compiler + programming-model combination
lowers directive code to the GPU, as characterised in the paper:

* **NVHPC / OpenACC** generates "embarrassingly parallel" code, performs its
  own common-subexpression elimination and schedules loads early, so the
  source-level CSE/SAT variants change little and bulk load gains are
  moderate (§VIII: 1.10× average on NPB).
* **GCC / OpenACC** uses a principal–agent model with immature support for
  the ``kernels`` directive: poor thread utilisation, little load CSE and
  almost no load scheduling, so it is memory-latency-bound and bulk load is
  worth up to 2.2× (§VIII).
* **GCC / OpenMP** starts from high register pressure, which limits the
  benefit of bulk load (§VIII: 1.06× average on SPEC OMP).
* **Clang / OpenMP** sits in between and benefits strongly from bulk load
  (1.66× average).
* **NVHPC / OpenMP** behaves like NVHPC/ACC but with less mature scheduling
  (1.47× average with ACCSAT on SPEC OMP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "CompilerModel",
    "NVHPC_ACC",
    "NVHPC_OMP",
    "GCC_ACC",
    "GCC_OMP",
    "CLANG_OMP",
    "COMPILER_MODELS",
    "compiler_model",
]


@dataclass(frozen=True)
class CompilerModel:
    """Parameters describing one compiler + programming model combination."""

    name: str
    programming_model: str  # "acc" or "omp"
    #: Fraction of *redundant* loads the compiler eliminates on the original
    #: code by itself (1.0 = perfect CSE of loads).
    load_cse_strength: float = 0.5
    #: Fraction of redundant arithmetic the compiler eliminates itself.
    arith_cse_strength: float = 0.5
    #: How many independent loads per thread the compiler's own scheduling
    #: keeps in flight for the original code (memory-level parallelism).
    scheduled_mlp: float = 4.0
    #: Memory-level parallelism achievable when the source itself hoists the
    #: loads (bulk load): compilers honour source order to this extent.
    bulk_mlp: float = 16.0
    #: Base register usage per thread for a simple kernel.
    base_registers: int = 40
    #: Extra registers the compiler's baseline code generation uses per
    #: live temporary value (register allocation quality).
    registers_per_live_value: float = 1.0
    #: Fraction of the hardware parallelism the compiler actually exposes
    #: for the `parallel` directive (explicit parallelism).
    parallel_efficiency: float = 1.0
    #: Fraction exposed for the OpenACC `kernels` directive, whose support
    #: is immature in GCC (paper §VIII: "inadequate parallelism, likely due
    #: to the immature support of OpenACC's kernels directive").
    kernels_efficiency: float = 1.0
    #: Fixed per-kernel-launch overhead in microseconds.
    launch_overhead_us: float = 6.0
    #: Whether FMA contraction is applied to the original code already.
    contract_fma: bool = True

    def effective_loads(self, original_loads: int, optimized_loads: int) -> float:
        """Loads the *original* binary actually performs per iteration.

        The compiler removes ``load_cse_strength`` of the redundancy that our
        source-level CSE would remove.
        """

        redundant = max(0, original_loads - optimized_loads)
        return optimized_loads + redundant * (1.0 - self.load_cse_strength)

    def effective_arith(self, original_ops: float, optimized_ops: float) -> float:
        redundant = max(0.0, original_ops - optimized_ops)
        return optimized_ops + redundant * (1.0 - self.arith_cse_strength)


NVHPC_ACC = CompilerModel(
    name="nvhpc",
    programming_model="acc",
    load_cse_strength=0.85,
    arith_cse_strength=0.85,
    scheduled_mlp=1.0,
    bulk_mlp=24.0,
    base_registers=64,
    registers_per_live_value=0.9,
    parallel_efficiency=1.0,
    kernels_efficiency=0.95,
    launch_overhead_us=5.0,
)

NVHPC_OMP = CompilerModel(
    name="nvhpc",
    programming_model="omp",
    load_cse_strength=0.8,
    arith_cse_strength=0.8,
    scheduled_mlp=0.7,
    bulk_mlp=20.0,
    base_registers=64,
    registers_per_live_value=0.9,
    parallel_efficiency=0.9,
    launch_overhead_us=6.0,
)

GCC_ACC = CompilerModel(
    name="gcc",
    programming_model="acc",
    load_cse_strength=0.35,
    arith_cse_strength=0.45,
    scheduled_mlp=1.0,
    bulk_mlp=6.0,
    base_registers=48,
    registers_per_live_value=1.1,
    parallel_efficiency=0.75,
    kernels_efficiency=0.30,
    launch_overhead_us=12.0,
    contract_fma=False,
)

GCC_OMP = CompilerModel(
    name="gcc",
    programming_model="omp",
    load_cse_strength=0.5,
    arith_cse_strength=0.5,
    scheduled_mlp=1.0,
    bulk_mlp=1.5,          # high baseline register pressure limits bulk load
    base_registers=110,
    registers_per_live_value=1.3,
    parallel_efficiency=0.7,
    launch_overhead_us=12.0,
    contract_fma=False,
)

CLANG_OMP = CompilerModel(
    name="clang",
    programming_model="omp",
    load_cse_strength=0.55,
    arith_cse_strength=0.6,
    scheduled_mlp=0.8,
    bulk_mlp=18.0,
    base_registers=56,
    registers_per_live_value=1.0,
    parallel_efficiency=0.85,
    launch_overhead_us=8.0,
)

COMPILER_MODELS: Dict[tuple, CompilerModel] = {
    ("nvhpc", "acc"): NVHPC_ACC,
    ("nvhpc", "omp"): NVHPC_OMP,
    ("gcc", "acc"): GCC_ACC,
    ("gcc", "omp"): GCC_OMP,
    ("clang", "omp"): CLANG_OMP,
}


def compiler_model(name: str, programming_model: str) -> CompilerModel:
    """Look up a compiler model by name ("nvhpc", "gcc", "clang") and model."""

    try:
        return COMPILER_MODELS[(name.lower(), programming_model.lower())]
    except KeyError:
        raise ValueError(
            f"no compiler model for {name!r} with programming model "
            f"{programming_model!r}; available: {sorted(COMPILER_MODELS)}"
        ) from None
