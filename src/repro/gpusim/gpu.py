"""GPU hardware configurations (paper §II-A and §VII).

The two configurations used in the evaluation are the A100-PCIE-40GB
(Figures 2–4, Tables II–IV) and the A100-SXM4-80GB (Figures 5–6), whose
memory bandwidth is 1.31× higher (paper §VIII).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUConfig", "A100_PCIE_40GB", "A100_SXM4_80GB"]


@dataclass(frozen=True)
class GPUConfig:
    """Architectural parameters of one GPU model."""

    name: str
    num_sms: int = 108
    #: FP64 cores per SM (A100 whitepaper: 32).
    fp64_cores_per_sm: int = 32
    clock_ghz: float = 1.41
    #: Achievable global-memory bandwidth in GB/s.
    mem_bandwidth_gbps: float = 1555.0
    #: Global-memory access latency in cycles.
    mem_latency_cycles: float = 480.0
    #: Maximum resident threads per SM.
    max_threads_per_sm: int = 2048
    #: Warp size.
    warp_size: int = 32
    #: Register file per SM (32-bit registers).
    registers_per_sm: int = 65536
    #: Maximum registers addressable per thread (beyond this, spills).
    max_registers_per_thread: int = 255
    #: L1/shared hit ratio assumed for spilled accesses and reused lines.
    l1_hit_ratio: float = 0.5
    #: L2 latency in cycles (spill traffic mostly hits L2).
    l2_latency_cycles: float = 200.0

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def bytes_per_cycle(self) -> float:
        """Device-wide memory bytes per GPU core clock cycle."""

        return self.mem_bandwidth_gbps / self.clock_ghz

    @property
    def bytes_per_cycle_per_sm(self) -> float:
        return self.bytes_per_cycle / self.num_sms

    @property
    def fp64_flops_per_cycle_per_sm(self) -> float:
        """FP64 operations per cycle per SM (FMA counted as one instruction)."""

        return float(self.fp64_cores_per_sm)

    def scaled_bandwidth(self, factor: float) -> "GPUConfig":
        """A copy of this GPU with memory bandwidth scaled by *factor*."""

        return GPUConfig(
            name=f"{self.name}-bw{factor:g}x",
            num_sms=self.num_sms,
            fp64_cores_per_sm=self.fp64_cores_per_sm,
            clock_ghz=self.clock_ghz,
            mem_bandwidth_gbps=self.mem_bandwidth_gbps * factor,
            mem_latency_cycles=self.mem_latency_cycles,
            max_threads_per_sm=self.max_threads_per_sm,
            warp_size=self.warp_size,
            registers_per_sm=self.registers_per_sm,
            max_registers_per_thread=self.max_registers_per_thread,
            l1_hit_ratio=self.l1_hit_ratio,
            l2_latency_cycles=self.l2_latency_cycles,
        )


#: The GPU of Figures 2–4 and Tables II–IV.
A100_PCIE_40GB = GPUConfig(
    name="A100-PCIE-40GB",
    mem_bandwidth_gbps=1555.0,
)

#: The GPU of Figures 5–6 (1.31x higher memory bandwidth, paper §VIII).
A100_SXM4_80GB = GPUConfig(
    name="A100-SXM4-80GB",
    mem_bandwidth_gbps=2039.0,
    mem_latency_cycles=460.0,
)
