"""Execution-time estimation of a compiled kernel on a GPU.

The model combines three classical components:

* **occupancy** — resident warps per SM limited by the register file and the
  compiler's parallel efficiency,
* **throughput bounds** — a roofline over the FP64 pipes and the DRAM
  bandwidth,
* **latency bound** — the exposed global-memory latency per iteration,
  which shrinks with more outstanding loads per thread (memory-level
  parallelism, improved by bulk load) and with more resident warps
  (occupancy, reduced by register pressure).

The per-iteration cycle estimate is
``max(compute, bandwidth, latency) + spills``; the kernel time multiplies
by the iteration count divided over the SMs and adds the launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.gpu import GPUConfig
from repro.gpusim.kernelmodel import CompiledKernel

__all__ = ["LaunchConfig", "KernelPerformance", "simulate_kernel"]


@dataclass(frozen=True)
class LaunchConfig:
    """How a kernel is launched by the benchmark."""

    #: Total loop iterations executed per kernel launch (grid * block work).
    iterations_per_launch: float = 1.0e6
    #: Number of launches of this kernel during the benchmark run.
    launches: int = 1
    #: Threads per block the compiler/launcher picks.
    threads_per_block: int = 128
    #: Fraction of iterations that are actually parallel work (1.0 normally;
    #: lower when the benchmark serialises, e.g. pbt's single-thread-block
    #: nested loops, §VIII).
    parallel_fraction: float = 1.0


@dataclass
class KernelPerformance:
    """Modelled performance of one kernel variant on one GPU."""

    name: str
    gpu: str
    compiler: str
    #: Total time for all launches, in seconds.
    time_s: float
    #: Time per launch, in milliseconds (Table IV's first column).
    time_per_launch_ms: float
    #: Executed instructions per launch (Table IV, ×10^6).
    instructions_per_launch: float
    #: Memory-bandwidth utilisation (0..1, Table IV's "memory" column).
    memory_utilization: float
    #: Registers per thread (Table IV).
    registers: int
    #: SM occupancy (0..1, Table IV).
    occupancy: float
    #: Which bound dominated: "compute", "bandwidth" or "latency".
    bound: str
    #: Achieved DRAM throughput in GB/s.
    dram_gbps: float


def simulate_kernel(
    kernel: CompiledKernel,
    gpu: GPUConfig,
    launch: LaunchConfig,
) -> KernelPerformance:
    """Estimate the execution time of *kernel* on *gpu* under *launch*."""

    compiler = kernel.compiler

    # ------------------------------------------------------------------
    # Occupancy
    # ------------------------------------------------------------------
    regs_per_warp = kernel.registers * gpu.warp_size
    warps_by_registers = gpu.registers_per_sm / max(regs_per_warp, 1.0)
    warps_by_threads = gpu.max_warps_per_sm
    resident_warps = min(warps_by_registers, warps_by_threads)
    resident_warps *= kernel.parallel_efficiency * launch.parallel_fraction
    resident_warps = max(1.0, min(resident_warps, float(gpu.max_warps_per_sm)))
    occupancy = resident_warps / gpu.max_warps_per_sm

    # ------------------------------------------------------------------
    # Per-warp, per-iteration cycle components
    # ------------------------------------------------------------------
    # compute: FP64 pipe issues one warp-wide FP op per cycle per SM quadrant
    fp_instr = kernel.fp_ops + kernel.fmas
    div_cycles = kernel.divs * 12.0 + kernel.calls * 24.0
    int_cycles = kernel.int_ops * 0.5
    compute_cycles_per_warp = fp_instr + int_cycles + div_cycles

    # Total iterations mapped to this GPU.
    total_iterations = launch.iterations_per_launch
    warp_iterations_per_sm = total_iterations / (gpu.num_sms * gpu.warp_size)

    # compute bound (per SM): all resident warps share the FP64 pipes
    compute_cycles = warp_iterations_per_sm * compute_cycles_per_warp * (
        gpu.warp_size / gpu.fp64_flops_per_cycle_per_sm
    )

    # memory bound (per SM), via Little's law: the DRAM throughput an SM can
    # sustain is limited both by its share of the peak bandwidth and by the
    # bytes it can keep in flight (resident warps x per-thread MLP x warp
    # width x 8 B) divided by the access latency.  Bulk load raises the MLP
    # term; register pressure lowers the resident-warp term — this is the
    # occupancy/latency trade-off of the paper's Table IV.
    outstanding_bytes = resident_warps * kernel.mlp * gpu.warp_size * 8.0
    latency_limited_bw = outstanding_bytes / gpu.mem_latency_cycles
    achieved_bw = min(gpu.bytes_per_cycle_per_sm, latency_limited_bw)
    bytes_per_warp_iter = kernel.dram_bytes * gpu.warp_size
    if bytes_per_warp_iter > 0:
        memory_cycles = warp_iterations_per_sm * bytes_per_warp_iter / max(achieved_bw, 1e-9)
    else:
        memory_cycles = 0.0

    cycles_per_sm = max(compute_cycles, memory_cycles)
    if cycles_per_sm == compute_cycles and compute_cycles >= memory_cycles:
        bound = "compute"
    elif achieved_bw >= gpu.bytes_per_cycle_per_sm * 0.95:
        bound = "bandwidth"
    else:
        bound = "latency"

    # spill traffic adds on top of whichever bound dominates (spills mostly
    # hit L1/L2 but still cost issue slots and some latency)
    spill_cycles = (
        warp_iterations_per_sm
        * kernel.spills
        * gpu.l2_latency_cycles
        * (1.0 - gpu.l1_hit_ratio)
        / max(resident_warps, 1.0)
    )
    cycles_per_sm += spill_cycles

    seconds_per_launch = cycles_per_sm / (gpu.clock_ghz * 1e9)
    seconds_per_launch += compiler.launch_overhead_us * 1e-6
    total_seconds = seconds_per_launch * launch.launches

    # ------------------------------------------------------------------
    # Derived metrics (Table IV columns)
    # ------------------------------------------------------------------
    dram_bytes_total = kernel.dram_bytes * total_iterations
    dram_gbps = dram_bytes_total / max(seconds_per_launch, 1e-12) / 1e9
    memory_utilization = min(1.0, dram_gbps / gpu.mem_bandwidth_gbps)
    instructions_per_launch = kernel.instructions * total_iterations

    return KernelPerformance(
        name=kernel.name,
        gpu=gpu.name,
        compiler=f"{compiler.name}/{compiler.programming_model}",
        time_s=total_seconds,
        time_per_launch_ms=seconds_per_launch * 1e3,
        instructions_per_launch=instructions_per_launch,
        memory_utilization=memory_utilization,
        registers=int(round(kernel.registers)),
        occupancy=occupancy,
        bound=bound,
        dram_gbps=dram_gbps,
    )


def _ceil_div(a: float, b: float) -> float:
    if a <= 0:
        return 0.0
    return float(-(-int(round(a)) // max(int(round(b)), 1)))
