"""Lowering of kernel statistics into a machine-level characterisation.

:func:`compile_kernel` plays the role of the backend compiler: given the
operation counts of a kernel body (original or one of the generated
variants) it produces a :class:`CompiledKernel` — the per-thread instruction
mix, the register demand, the achievable memory-level parallelism and any
spill traffic — which :func:`repro.gpusim.launch.simulate_kernel` then turns
into an execution-time estimate on a specific GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codegen.generator import KernelCodeStats
from repro.gpusim.compilers import CompilerModel
from repro.gpusim.gpu import GPUConfig

__all__ = ["KernelCharacterization", "CompiledKernel", "compile_kernel"]


@dataclass(frozen=True)
class KernelCharacterization:
    """Source-level description of one kernel variant.

    ``original`` carries the operation counts of the unoptimized loop body
    (every textual occurrence counted); ``generated`` the counts of the code
    actually fed to the compiler (equal to ``original`` for the baseline
    build, or the output of the code generator for CSE/SAT/BULK/ACCSAT).
    """

    name: str
    original: KernelCodeStats
    generated: KernelCodeStats
    #: True when the generated code hoists loads (bulk load layout).
    bulk_load: bool = False
    #: True when this characterisation is the untouched original source.
    is_original: bool = True
    #: Number of simultaneously live temporaries (0 for the original).
    live_temporaries: int = 0
    #: The shipped kernel source stands for a `scale`x larger real kernel
    #: (see KernelSpec.statement_scale); operation counts and register
    #: pressure are multiplied by this factor in the machine model.
    scale: float = 1.0
    #: True when the kernel is offloaded with the OpenACC `kernels`
    #: directive (rather than `parallel`); affects the parallel efficiency
    #: of compilers whose `kernels` support is immature.
    uses_kernels_directive: bool = False


@dataclass(frozen=True)
class CompiledKernel:
    """Machine-level view of one kernel variant under one compiler."""

    name: str
    compiler: CompilerModel
    #: Per-thread, per-iteration operation counts after compiler optimization.
    loads: float
    stores: float
    fp_ops: float
    fmas: float
    int_ops: float
    divs: float
    calls: float
    #: Registers per thread (clamped to the hardware maximum by the launcher).
    registers: float
    #: Spilled values per thread per iteration (beyond the register limit).
    spills: float
    #: Memory-level parallelism: independent outstanding loads per thread.
    mlp: float
    #: Fraction of hardware parallelism exposed by the compiler for this
    #: kernel's directive form (parallel vs kernels).
    parallel_efficiency: float = 1.0

    @property
    def instructions(self) -> float:
        """Executed instructions per thread per iteration."""

        return (
            self.loads + self.stores + self.fp_ops + self.fmas
            + self.int_ops + self.divs + self.calls + 2.0 * self.spills
        )

    @property
    def dram_bytes(self) -> float:
        """Global-memory traffic per thread per iteration (bytes)."""

        return 8.0 * (self.loads + self.stores)


def compile_kernel(
    characterization: KernelCharacterization,
    compiler: CompilerModel,
    gpu: Optional[GPUConfig] = None,
) -> CompiledKernel:
    """Lower a kernel characterisation through a compiler model."""

    original = characterization.original
    generated = characterization.generated
    scale = max(1.0, characterization.scale)

    if characterization.is_original:
        # The compiler sees the redundant source and removes part of the
        # redundancy itself, depending on its optimisation strength.
        loads = compiler.effective_loads(original.loads, _min_loads(original, generated))
        arith = compiler.effective_arith(
            original.flops + original.fmas, generated.flops + generated.fmas
        )
        fmas = (original.fmas + (arith - original.fmas) * 0.4) if compiler.contract_fma else original.fmas
        fmas = min(fmas, arith)
        fp_ops = max(0.0, arith - fmas)
        int_ops = float(original.int_ops)
        divs = float(original.divs)
        calls = float(original.calls)
        stores = float(original.stores)
        mlp = compiler.scheduled_mlp
        # the working set of the original code grows with the kernel size
        live = max(2.0, (loads * 0.5 + arith * 0.1) * scale)
    else:
        # Generated code: the temporaries pin the schedule, the compiler
        # keeps the source-level structure (paper §VI-A).
        loads = float(generated.loads)
        stores = float(generated.stores)
        fmas = float(generated.fmas) if compiler.contract_fma else 0.0
        fp_ops = float(generated.flops) + (0.0 if compiler.contract_fma else float(generated.fmas))
        int_ops = float(generated.int_ops)
        divs = float(generated.divs)
        calls = float(generated.calls)
        if characterization.bulk_load:
            # every hoisted load is live at once: maximum MLP, maximum
            # register pressure (Table IV: +~100 registers on BT)
            mlp = min(compiler.bulk_mlp, max(1.0, float(generated.loads) * scale))
            live = max(float(characterization.live_temporaries) * 0.5,
                       float(generated.loads)) * scale
        else:
            mlp = min(compiler.scheduled_mlp, max(1.0, float(generated.loads)))
            live = max(2.0, (loads * 0.5 + (fp_ops + fmas) * 0.1) * scale)

    loads *= scale
    stores *= scale
    fp_ops *= scale
    fmas *= scale
    int_ops *= scale
    divs *= scale
    calls *= scale

    registers = compiler.base_registers + compiler.registers_per_live_value * live

    spills = 0.0
    if gpu is not None and registers > gpu.max_registers_per_thread:
        spills = registers - gpu.max_registers_per_thread
        registers = float(gpu.max_registers_per_thread)

    efficiency = (
        compiler.kernels_efficiency
        if characterization.uses_kernels_directive
        else compiler.parallel_efficiency
    )
    return CompiledKernel(
        name=characterization.name,
        compiler=compiler,
        loads=loads,
        stores=stores,
        fp_ops=fp_ops,
        fmas=fmas,
        int_ops=int_ops,
        divs=divs,
        calls=calls,
        registers=registers,
        spills=spills,
        mlp=max(1.0, mlp),
        parallel_efficiency=efficiency,
    )


def _min_loads(original: KernelCodeStats, generated: KernelCodeStats) -> int:
    """The irreducible number of loads (what perfect CSE would keep)."""

    if generated.loads > 0:
        return min(original.loads, generated.loads)
    return original.loads
