"""Analytic GPU + compiler performance model.

This package substitutes for the paper's experimental platform (NVIDIA A100
GPUs driven by the NVHPC, GCC and Clang OpenACC/OpenMP compilers), which is
unavailable offline.  It is *not* a cycle-accurate simulator: it is a
documented analytic model (occupancy + roofline + latency-hiding) whose job
is to preserve the qualitative behaviour the paper's evaluation relies on:

* redundant loads and instructions cost time in proportion to their count,
* the registers consumed by hoisted loads reduce occupancy (and spill past
  the hardware limit),
* memory-latency-bound kernels speed up when loads are issued early (bulk
  load) because more loads are in flight per thread,
* NVHPC already performs CSE and load scheduling on the original code, GCC
  (especially for the OpenACC ``kernels`` directive) does not, and Clang
  sits in between — which is why the paper's speedups are much larger on
  GCC/Clang than on NVHPC,
* the A100-SXM4-80GB has 1.31× the memory bandwidth of the A100-PCIE-40GB.

See DESIGN.md §3 for the substitution rationale and EXPERIMENTS.md for the
paper-vs-model comparison of every table and figure.
"""

from repro.gpusim.gpu import A100_PCIE_40GB, A100_SXM4_80GB, GPUConfig
from repro.gpusim.compilers import (
    CLANG_OMP,
    COMPILER_MODELS,
    GCC_ACC,
    GCC_OMP,
    NVHPC_ACC,
    NVHPC_OMP,
    CompilerModel,
    compiler_model,
)
from repro.gpusim.kernelmodel import CompiledKernel, KernelCharacterization, compile_kernel
from repro.gpusim.launch import KernelPerformance, LaunchConfig, simulate_kernel
from repro.gpusim.metrics import KernelMeasurement, VariantComparison, speedup

__all__ = [
    "A100_PCIE_40GB",
    "A100_SXM4_80GB",
    "CLANG_OMP",
    "COMPILER_MODELS",
    "CompiledKernel",
    "CompilerModel",
    "GCC_ACC",
    "GCC_OMP",
    "GPUConfig",
    "KernelCharacterization",
    "KernelMeasurement",
    "KernelPerformance",
    "LaunchConfig",
    "NVHPC_ACC",
    "NVHPC_OMP",
    "VariantComparison",
    "compile_kernel",
    "compiler_model",
    "simulate_kernel",
    "speedup",
]
