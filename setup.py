"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e .``) on offline machines where
PEP 660 editable builds are unavailable.
"""

from setuptools import setup

setup(
    # numpy is a soft dependency: the e-graph's columnar core vectorises
    # its batched passes when numpy is importable and falls back to pure
    # ``array``-module loops otherwise (REPRO_NO_NUMPY=1 forces the
    # fallback).  ``pip install .[fast]`` opts into the fast path.
    extras_require={"fast": ["numpy"]},
)
