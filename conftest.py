"""Ensure the in-tree ``src`` layout is importable when the package has not
been installed (offline machines without editable-install support)."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
