#!/usr/bin/env python3
"""Optimize an OpenMP target-offload stencil and validate it numerically.

Shows that ACC Saturator is programming-model agnostic (paper contribution
1): the same pipeline handles `#pragma omp target teams distribute` kernels,
preserves the directives verbatim, and the optimized kernel matches a NumPy
reference implementation.

Usage::

    python examples/stencil_openmp.py
"""

import numpy as np

from repro import SaturatorConfig, Variant, optimize_source
from repro.frontend import parse_statement
from repro.frontend.normalize import normalize_blocks
from repro.interp import Environment, execute

KERNEL = """
#pragma omp target teams distribute
for (int k = 1; k < nz - 1; k++) {
#pragma omp parallel for simd
  for (int j = 1; j < ny - 1; j++) {
    out[k][j] = c0 * in[k][j]
              + c1 * (in[k][j-1] + in[k][j+1] + in[k-1][j] + in[k+1][j])
              + c1 * (in[k-1][j-1] + in[k-1][j+1] + in[k+1][j-1] + in[k+1][j+1]);
  }
}
"""


def numpy_reference(grid, c0, c1):
    out = np.zeros_like(grid)
    out[1:-1, 1:-1] = (
        c0 * grid[1:-1, 1:-1]
        + c1 * (grid[1:-1, :-2] + grid[1:-1, 2:] + grid[:-2, 1:-1] + grid[2:, 1:-1])
        + c1 * (grid[:-2, :-2] + grid[:-2, 2:] + grid[2:, :-2] + grid[2:, 2:])
    )
    return out


def main() -> None:
    result = optimize_source(KERNEL, SaturatorConfig(variant=Variant.ACCSAT))
    report = result.kernels[0]
    print("Optimized OpenMP stencil "
          f"(loads {report.original.loads} -> {report.optimized.loads}, "
          f"{report.optimized.fmas} FMAs):")
    print(result.code)

    # run the *generated* code in the reference interpreter and compare with NumPy
    nz = ny = 10
    rng = np.random.default_rng(3)
    grid = rng.standard_normal((nz, ny))
    c0, c1 = 0.5, 0.0625

    optimized_ast = parse_statement(result.code)
    normalize_blocks(optimized_ast)
    env = Environment(
        scalars={"nz": nz, "ny": ny, "c0": c0, "c1": c1},
        arrays={"in": grid.copy(), "out": np.zeros((nz, ny))},
    )
    execute(optimized_ast, env)

    expected = numpy_reference(grid, c0, c1)
    max_err = float(np.abs(env.arrays["out"][1:-1, 1:-1] - expected[1:-1, 1:-1]).max())
    print(f"Max |generated - NumPy reference| = {max_err:.3e}")
    assert max_err < 1e-9, "optimized stencil diverges from the NumPy reference"
    print("OK: the optimized OpenMP kernel matches the NumPy reference.")


if __name__ == "__main__":
    main()
