#!/usr/bin/env python3
"""Quickstart for the concurrent optimization service (PR 5).

Shows the three ways to consume a submitted job:

1. **submit + block** — ``handle.result()`` like a ``Future``,
2. **poll** — inspect ``handle.state`` / ``handle.progress()`` while the
   job runs,
3. **stream** — iterate ``handle.stream()`` for per-iteration saturation
   snapshots (``extracted_cost`` populated because the service config
   enables anytime extraction).

It also demonstrates the two mechanisms that make the service cheap under
duplicate-heavy traffic: in-flight **coalescing** (identical concurrent
submissions share one pipeline run) and the **artifact cache** (identical
later submissions skip the pipeline entirely), plus the fault-tolerance
layer (PR 6): per-job **deadlines** with graceful degradation — a job
whose deadline trips mid-saturation finishes from its best anytime
snapshot and resolves with a ``degraded=True`` artifact instead of
failing.

Section 5 switches to the **supervised process workers** (PR 8,
``executor="process"``): each job runs in a worker process, and a worker
that dies mid-job is detected, its orphaned job retried on a respawned
worker — here demonstrated with a deterministically injected
``worker:crash`` fault.  The same backend is available on the CLI as
``accsat serve --executor process``.

Usage::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant
from repro.service import (
    FaultPlan,
    FaultRule,
    JobDeadlineError,
    OptimizationRequest,
    OptimizationService,
)

KERNEL = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
#pragma acc loop vector
  for (int j = 0; j < m; j++) {
    out[i][j] = w0 * in[i][j] + w1 * (in[i][j-1] + in[i][j+1])
              + w0 * in[i][j] * w1;
  }
}
"""

OTHER = """
#pragma acc parallel loop
for (int i = 0; i < n; i++) {
  y[i] = (a[i] + b[i]) * (a[i] + b[i]) + c[i] / a[i];
}
"""

#: Anytime extraction on -> jobs publish an extracted cost per iteration.
CONFIG = SaturatorConfig(
    variant=Variant.ACCSAT,
    limits=RunnerLimits(node_limit=2000, iter_limit=6, time_limit=60.0),
    anytime_extraction=True,
    plateau_patience=2,
)


def main() -> None:
    with OptimizationService(config=CONFIG, workers=4) as service:
        # -- 1. submit + block --------------------------------------------
        handle = service.submit(KERNEL)
        result = handle.result(timeout=120)
        print(f"blocking submit: {len(result.kernels)} kernel(s), "
              f"extracted cost {result.kernels[0].extracted_cost:.1f}")

        # -- 2. burst of duplicates: coalescing + cache -------------------
        burst = [
            service.submit(OptimizationRequest(OTHER, priority=index % 2))
            for index in range(5)
        ]
        for index, h in enumerate(burst):
            h.result(timeout=120)
            print(f"burst[{index}]: coalesced={h.coalesced} "
                  f"from_cache={h.from_cache}")
        repeat = service.submit(OTHER)  # everything in flight finished
        repeat.result(timeout=120)
        print(f"repeat submission: from_cache={repeat.from_cache}")

        # -- 3. stream progress of a fresh job ----------------------------
        fresh = KERNEL.replace("w0", "k0").replace("w1", "k1")
        streaming = service.submit(fresh)
        print("streaming saturation progress:")
        for event in streaming.stream(timeout=120):
            cost = "-" if event.extracted_cost is None else f"{event.extracted_cost:.1f}"
            print(f"  iter {event.iteration}: {event.egraph_nodes} e-nodes, "
                  f"best extracted cost {cost}")
        print(f"streamed job state: {streaming.state.value}")

        # -- service accounting -------------------------------------------
        print("service stats:", service.stats.snapshot())

    # -- 4. deadlines: queued expiry and graceful degradation -------------
    # a deadline already in the past fails the job *typed* at pickup ...
    with OptimizationService(config=CONFIG, workers=2) as service:
        late = service.submit(KERNEL, deadline=-1.0)
        try:
            late.result(timeout=120)
        except JobDeadlineError as error:
            print(f"expired in queue: {error}")

    # ... while a deadline tripping mid-saturation degrades gracefully.
    # (Injected deterministically here — FaultRule("progress:publish",
    # "deadline") expires the job's token at the first iteration boundary
    # — so the example never depends on wall-clock timing; a real
    # deployment passes deadline=<seconds> and lets the clock do this.)
    plan = FaultPlan([FaultRule("progress:publish", "deadline", nth=1)])
    with OptimizationService(config=CONFIG, workers=2, faults=plan) as service:
        tight = service.submit(KERNEL, deadline=600.0)
        result = tight.result(timeout=120)
        print(f"deadline mid-run: degraded={result.degraded}, "
              f"stopped after {len(result.kernels[0].runner.iterations)} "
              f"iteration(s) with extracted cost "
              f"{result.kernels[0].extracted_cost:.1f}")
        print("degraded results are never cached: "
              f"stores={service.session.cache.stats.stores}")

    # -- 5. process workers: surviving worker death ------------------------
    # executor="process" runs each attempt in a supervised worker process.
    # The injected crash hard-exits the worker after it published one
    # iteration; the supervisor detects the death, requeues the orphaned
    # job through the retry path, respawns the pool, and the retry serves
    # the same artifact an undisturbed run would have.
    plan = FaultPlan([FaultRule("worker:crash", "crash", nth=1, after=1)])
    with OptimizationService(
        config=CONFIG, workers=2, executor="process", faults=plan
    ) as service:
        survivor = service.submit(KERNEL)
        result = survivor.result(timeout=120)
        stats = service.stats.snapshot()
        print(f"worker crashed mid-job: deaths={stats['worker_deaths']} "
              f"respawns={stats['worker_respawns']} "
              f"retried={stats['retried']} recovered={stats['recovered']}")
        print(f"recovered result: {len(result.kernels)} kernel(s), "
              f"extracted cost {result.kernels[0].extracted_cost:.1f}, "
              f"degraded={result.degraded}")

    # -- 6. telemetry: trace a wave and summarize it -----------------------
    # Pass a Tracer to the service and every job becomes a span tree:
    # job -> attempt(s) -> kernel -> stage:* -> iteration, with cache
    # probes, retries and injected faults as events.  Tracing is strictly
    # observational — the artifacts are byte-identical to an untraced run
    # — and service.metrics.snapshot() is the one deterministic document
    # unifying service stats, cache counters, fault-injection counts,
    # phase-time histograms and per-rule counters (what
    # `accsat serve --report` emits).
    from repro.obs import Tracer, render_summary

    tracer = Tracer()
    plan = FaultPlan([FaultRule("cache:get", "transient", nth=1)])
    with OptimizationService(
        config=CONFIG, workers=2, faults=plan, tracer=tracer,
        retry_backoff=0.01, retry_backoff_cap=0.02,
    ) as service:
        service.submit(KERNEL).result(timeout=120)
        snapshot = service.metrics.snapshot()
    print("trace summary:")
    print(render_summary(tracer.records()))
    print(f"metrics sections: {sorted(snapshot)}")
    print(f"phase histograms: {sorted(snapshot['histograms'])}")
    # (`accsat --trace FILE` / `accsat serve --trace FILE` write this
    # record stream as JSONL plus a chrome://tracing-loadable file.)


if __name__ == "__main__":
    main()
