#!/usr/bin/env python3
"""Optimize NPB-BT's dominant kernel and model its GPU performance.

Reproduces, for a single kernel, the story of the paper's Table IV: the
z_solve Jacobian kernel is memory-latency-bound; bulk load trades registers
and occupancy for memory-level parallelism and wins big — especially under
GCC, whose original code schedules loads poorly.

Usage::

    python examples/optimize_npb_bt.py
"""

from repro.benchsuite.npb.bt import BT
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    evaluate_kernel,
)
from repro.gpusim import A100_PCIE_40GB, compiler_model
from repro.saturator import SaturatorConfig, Variant, optimize_source


def main() -> None:
    jacobian = BT.kernels[0]
    settings = EvaluationSettings(node_limit=2000, iter_limit=4)

    print("Optimizing", jacobian.name, "with ACCSAT ...")
    result = optimize_source(jacobian.source, SaturatorConfig(variant=Variant.ACCSAT))
    report = result.kernels[0]
    print(f"  assignments: {report.assignments}, groups: {report.groups}")
    print(f"  e-graph: {report.egraph_nodes} nodes / {report.egraph_classes} classes")
    print(f"  loads {report.original.loads} -> {report.optimized.loads}, "
          f"fp ops {report.original.flops} -> "
          f"{report.optimized.flops + report.optimized.fmas}")
    print()
    print("Generated code (first 40 lines):")
    print("\n".join(result.code.splitlines()[:40]))
    print("  ...")
    print()

    for compiler_name in ("nvhpc", "gcc"):
        compiler = compiler_model(compiler_name, BT.programming_model)
        measurement = evaluate_kernel(jacobian, compiler, A100_PCIE_40GB,
                                      settings=settings)
        original = measurement.by_variant["original"]
        print(f"[{compiler_name}] original: {original.time_per_launch_ms:.2f} ms/launch, "
              f"{original.registers} regs, occupancy {original.occupancy:.2f}, "
              f"memory {original.memory_utilization * 100:.0f}%")
        for variant in VARIANT_ORDER:
            perf = measurement.by_variant[variant]
            print(f"    {variant:9s}: {perf.time_per_launch_ms:8.2f} ms/launch  "
                  f"speedup {measurement.speedup(variant):5.2f}x  "
                  f"regs {perf.registers:3d}  occ {perf.occupancy:.2f}  "
                  f"mem {perf.memory_utilization * 100:3.0f}%  [{perf.bound}]")
        print()


if __name__ == "__main__":
    main()
