#!/usr/bin/env python3
"""Explore the e-graph machinery directly: rules, saturation, extraction.

A lower-level tour of the substrate underneath the pipeline: build an
e-graph by hand, watch it saturate under the Table I rule set, and compare
the three extraction strategies (tree / greedy DAG / ILP) under the paper's
cost model.

Usage::

    python examples/saturation_explorer.py
"""

from repro.cost import DEFAULT_COST_MODEL
from repro.egraph import EGraph, Runner, RunnerLimits, extract_best
from repro.egraph.language import op, sym
from repro.rules import constant_folding_analysis, default_ruleset, ruleset_by_name


def main() -> None:
    # the running example of the paper's Figure 1:
    #   B = D + E;  C = E + D;  A = B * C + A_in
    egraph = EGraph(constant_folding_analysis())
    b = egraph.add_term(op("+", sym("D"), sym("E")))
    c = egraph.add_term(op("+", sym("E"), sym("D")))
    a = egraph.add_term(op("+", op("*", op("+", sym("D"), sym("E")),
                                 op("+", sym("E"), sym("D"))),
                         sym("A_in")))

    print(f"initial e-graph: {len(egraph)} e-nodes, {egraph.num_classes} e-classes")
    print(f"B and C equal before saturation? {egraph.is_equal(b, c)}")

    report = Runner(egraph, default_ruleset(), RunnerLimits(10_000, 10, 10.0)).run()
    print(f"saturation: {report.summary()}")
    print(f"B and C equal after saturation?  {egraph.is_equal(b, c)}")
    print()

    for method in ("tree", "dag-greedy", "ilp"):
        result = extract_best(egraph, [a, b, c], DEFAULT_COST_MODEL, method)
        print(f"extraction [{method:10s}]  DAG cost {result.dag_cost:7.1f}  "
              f"A := {result.terms[a]}")
    print()

    # rule-set ablation: how much does each family of rules grow the e-graph?
    for name in ("none", "fma-only", "reassoc-only", "default", "extended"):
        egraph = EGraph(constant_folding_analysis())
        root = egraph.add_term(
            op("+", sym("x"), op("*", sym("y"), op("+", sym("z"), op("*", sym("x"), sym("y")))))
        )
        report = Runner(egraph, ruleset_by_name(name), RunnerLimits(5000, 8, 5.0)).run()
        best = extract_best(egraph, [root], DEFAULT_COST_MODEL, "dag-greedy")
        print(f"ruleset {name:13s}: {len(egraph):5d} e-nodes, "
              f"stop={report.stop_reason.value:10s} best cost {best.dag_cost:6.1f}")


if __name__ == "__main__":
    main()
