#!/usr/bin/env python3
"""Quickstart: optimize the paper's Listing 1 matrix-multiplication kernel.

Runs the full ACC Saturator pipeline (SSA -> e-graph -> equality saturation
-> LP/greedy extraction -> temp-var insertion + bulk load) on an OpenACC
kernel, prints the generated code for each variant, and checks semantic
equivalence with the reference interpreter.

Usage::

    python examples/quickstart.py
"""

from repro import SaturatorConfig, Variant, optimize_source
from repro.frontend import parse_statement
from repro.frontend.cast import clone
from repro.frontend.normalize import normalize_blocks
from repro.interp import verify_equivalence
from repro.saturator.driver import optimize_ast

KERNEL = """
#pragma acc kernels loop independent
for (int i = 0; i < cy; i++) {
#pragma acc loop independent gang(16) vector(256)
  for (int j = 0; j < cx; j++) {
    double tmp = 0.f;
    for (int l = 0; l < ax; l++)
      tmp += a[i][l] * b[l][j];
    r[i][j] = alpha * tmp + beta * c[i][j];
  }
}
"""


def main() -> None:
    print("=" * 72)
    print("Input kernel (paper Listing 1)")
    print("=" * 72)
    print(KERNEL)

    for variant in (Variant.CSE, Variant.ACCSAT):
        result = optimize_source(KERNEL, SaturatorConfig(variant=variant))
        report = result.kernels[0]
        print("=" * 72)
        print(f"Variant {variant.value}: "
              f"loads {report.original.loads} -> {report.optimized.loads}, "
              f"fp ops {report.original.flops + report.original.fmas} -> "
              f"{report.optimized.flops + report.optimized.fmas} "
              f"({report.optimized.fmas} FMA), "
              f"{report.optimized.temporaries} temporaries")
        print("=" * 72)
        print(result.code)

    # Semantics check: run original vs ACCSAT on random inputs.
    original = parse_statement(KERNEL)
    normalize_blocks(original)
    optimized = clone(original)
    optimize_ast(optimized, SaturatorConfig(variant=Variant.ACCSAT))
    check = verify_equivalence(original, optimized, trials=3)
    print("=" * 72)
    print(f"Semantic equivalence (3 random trials): "
          f"{'PASSED' if check.passed else 'FAILED'} "
          f"(max difference {check.max_difference:.2e})")


if __name__ == "__main__":
    main()
